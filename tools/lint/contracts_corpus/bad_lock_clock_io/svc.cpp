#include "svc.hpp"

#include <chrono>
#include <iostream>

namespace demo {

long Svc::warm() {
  std::lock_guard<std::mutex> lk(mu_);  // expect(hot-lock)
  // expect-via(Svc::answer->Svc::warm)
  return cached_;
}

long Svc::stamp() {
  auto t = std::chrono::steady_clock::now();  // expect(hot-clock)
  // expect-via(Svc::answer->Svc::stamp)
  return t.time_since_epoch().count();
}

void Svc::log_decision(long v) {
  std::cout << v;  // expect(hot-io)
  // expect-via(Svc::answer->Svc::log_decision)
}

long Svc::answer() {
  long v = warm() + stamp();
  log_decision(v);
  return v;
}

}  // namespace demo
