#pragma once
#ifndef INTSCHED_HOTPATH
#define INTSCHED_HOTPATH __attribute__((annotate("intsched::hotpath")))
#define INTSCHED_COLDPATH __attribute__((annotate("intsched::coldpath")))
#endif
