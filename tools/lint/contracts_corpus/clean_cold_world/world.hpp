#pragma once
#include "contract_macros.hpp"

#include <memory>
#include <vector>

namespace demo {

struct MetroView {
  long total() const;
  long sum_ = 0;
};

// Cold code may allocate and do I/O freely; a hot root that only reads
// through a locally held handle (kept inside its own frame) is clean.
struct World {
  INTSCHED_HOTPATH long serve();
  INTSCHED_COLDPATH void load_config();
  std::shared_ptr<MetroView> view() const;
  std::shared_ptr<MetroView> current_;
  std::vector<long> staged_;
};

}  // namespace demo
