#include "world.hpp"

#include <fstream>
#include <string>

namespace demo {

long MetroView::total() const {
  return sum_;
}

void World::load_config() {
  std::ifstream in("world.cfg");
  std::string line;
  while (std::getline(in, line)) {
    staged_.push_back(static_cast<long>(line.size()));
  }
}

std::shared_ptr<MetroView> World::view() const {
  return current_;
}

long World::serve() {
  auto v = view();
  return v->total();
}

}  // namespace demo
