#include "map.hpp"

#include <vector>

namespace demo {

void Map::publish() {
  std::vector<int> staged(16);  // cold allocation: must NOT be reported
  size_ = static_cast<int>(staged.size());
}

int Map::pick() {
  publish();  // expect(hot-coldcall)
  // expect-via(Map::pick->Map::publish)
  return size_;
}

}  // namespace demo
