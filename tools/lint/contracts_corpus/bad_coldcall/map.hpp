#pragma once
#include "contract_macros.hpp"

namespace demo {

// COLDPATH is a barrier *and* a tripwire: the analyzer must flag the
// hot->cold edge at the call site, but must NOT descend into publish()
// and double-report its (deliberate) allocation.
struct Map {
  INTSCHED_COLDPATH void publish();
  INTSCHED_HOTPATH int pick();
  int size_ = 0;
};

}  // namespace demo
