// Corpus: mutex members whose class declares no GUARDED_BY field. The
// lock protects whatever the author had in mind, which -Wthread-safety
// cannot check; annotating the guarded fields (thread_annot.hpp) turns
// the discipline into a compile error. thread-share is suppressed
// file-wide so this corpus exercises mutex-no-guard in isolation.
// intsched-lint: allow-file(thread-share)
#include <cstdint>
#include <mutex>

struct UnguardedCache {
  std::mutex mutex_;  // expect(mutex-no-guard)
  std::int64_t hits = 0;
  std::int64_t misses = 0;
};

class UnguardedRegistry {
 public:
  void bump();

 private:
  std::shared_mutex lock_;  // expect(mutex-no-guard)
  std::int64_t entries_ = 0;
};

// Function-local locks are fine: lexical scope is their discipline.
std::int64_t scoped_sum(std::int64_t a, std::int64_t b) {
  std::mutex local_mutex;
  const std::lock_guard<std::mutex> guard(local_mutex);
  return a + b;
}
