// Corpus: the serving path done right (DESIGN.md §13). The context owns
// every buffer the request loop needs, sized on the cold path; the hot
// function borrows one snapshot handle for exactly the frame of the call
// and hands deferred work a by-value copy of the handle.
#include <functional>
#include <memory>
#include <vector>

struct Rank {
  int server = 0;
};

struct View {
  Rank best;
};

struct ShardedMap {
  std::shared_ptr<const View> metro_snapshot() const { return view_; }
  std::shared_ptr<const View> view_;
};

struct Scheduler {
  void post(std::function<void()> cb);
};

struct Frontend {
  ShardedMap map;
  Scheduler sched;
  std::vector<Rank> staging_;

  // Cold path: grow the reusable scratch once, before serving starts.
  void reserve(int max_results) {
    staging_.reserve(static_cast<unsigned>(max_results));
  }

  // Hot request loop: borrow the handle, reuse member scratch, no
  // allocator calls.
  // intsched-lint: hot-path
  int serve_request(int origin) {
    auto snap = map.metro_snapshot();
    staging_.clear();
    staging_.push_back(Rank{origin + snap->best.server});
    return staging_.back().server;
  }

  // Deferred work copies the handle: the shared_ptr keeps the view alive
  // past this frame, so nothing dangles.
  void refresh_later() {
    auto snap = map.metro_snapshot();
    sched.post([snap] { (void)snap->best.server; });
  }
};
