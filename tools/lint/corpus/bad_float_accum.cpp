// Corpus: order-sensitive floating-point accumulation over a hash map.
// The loop itself is one finding; the += inside it is a second.
#include <cstdint>
#include <unordered_map>

struct Stats {
  std::unordered_map<std::int64_t, double> samples_;

  [[nodiscard]] double total() const {
    double sum = 0.0;
    for (const auto& [id, v] : samples_) {  // expect(unordered-iter)
      sum += v;  // expect(float-accum)
    }
    return sum;
  }

  [[nodiscard]] double mean() const {
    double acc = 0.0;
    std::int64_t n = 0;
    for (const auto& kv : samples_) {  // expect(unordered-iter)
      acc += kv.second;  // expect(float-accum)
      ++n;  // integer counting is order-insensitive: no finding here
    }
    return n == 0 ? 0.0 : acc / static_cast<double>(n);
  }
};
