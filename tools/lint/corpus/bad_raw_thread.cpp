// Corpus: direct thread creation / detach outside the sanctioned pool
// (exp::SweepRunner in sweep_runner.cpp). Keeping spawn policy in one
// audited place is what makes the stop-flag and exception-funnel
// semantics checkable. thread-share is suppressed file-wide so this
// corpus exercises raw-thread in isolation.
// intsched-lint: allow-file(thread-share)
#include <cstdint>
#include <thread>

std::int64_t g_done = 0;

void spawn_loose() {
  std::thread worker([] { g_done = 1; });  // expect(raw-thread)
  worker.join();
}

void spawn_and_abandon() {
  std::jthread helper([] { g_done = 2; });  // expect(raw-thread)
  helper.detach();  // expect(raw-thread)
}

// Member access on std::thread (no spawn) is deliberately not flagged:
// ids and hardware_concurrency() are queries, not concurrency.
unsigned query_only() {
  const std::thread::id self = std::this_thread::get_id();
  return self == std::thread::id{} ? 0u
                                   : std::thread::hardware_concurrency();
}
