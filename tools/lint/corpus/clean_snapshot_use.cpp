// Corpus: correct snapshot usage — handles stay within their frame, or
// cross into deferred work by value (the handle is a cheap shared_ptr
// copy that legitimately extends the pinned snapshot's lifetime).
#include <functional>
#include <memory>

struct Rank {
  int server = 0;
};

struct Snapshot {
  Rank best;
};

struct Map {
  std::shared_ptr<const Snapshot> rank_snapshot() const { return snap_; }
  std::shared_ptr<const Snapshot> snap_;
};

struct Scheduler {
  void schedule_after(long ticks, std::function<void()> cb);
};

struct Service {
  Map map;
  Scheduler sched;

  int read_in_frame() {
    auto snap = map.rank_snapshot();
    return snap->best.server;  // value copied out, handle dies here
  }

  void defer_by_value() {
    auto snap = map.rank_snapshot();
    // By-value capture: the lambda owns its own handle, pinning the
    // snapshot until the callback retires. No dangling reference.
    sched.schedule_after(10, [snap] { (void)snap->best.server; });
  }

  void reacquire_inside() {
    sched.schedule_after(10, [this] {
      auto fresh = map.rank_snapshot();
      (void)fresh->best.server;
    });
  }
};
