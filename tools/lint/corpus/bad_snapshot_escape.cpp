// Corpus: escapes of RCU-style snapshot handles. A published snapshot is
// immutable, but the *handle* pins its memory; a reference that outlives
// the handle reads freed or superseded state after the next publish().
#include <functional>
#include <memory>

struct Rank {
  int server = 0;
};

struct Snapshot {
  Rank best;
};

struct Map {
  std::shared_ptr<const Snapshot> rank_snapshot() const { return snap_; }
  std::shared_ptr<const Snapshot> snap_;
};

struct Scheduler {
  void schedule_after(long ticks, std::function<void()> cb);
};

struct Service {
  Map map;
  Scheduler sched;
  const void* stale_ = nullptr;

  const void* leak_return() {
    auto snap = map.rank_snapshot();
    return &snap;  // expect(snapshot-escape)
  }

  void leak_member() {
    auto view = map.rank_snapshot();
    stale_ = &view;  // expect(snapshot-escape)
  }

  void leak_deferred() {
    auto snap = map.rank_snapshot();
    sched.schedule_after(10, [&] { (void)snap->best.server; });  // expect(snapshot-escape)
  }
};
