// Corpus: raw arithmetic declarations whose names encode units. Each one
// is a latent unit-mixing bug the strong-type layer (sim::SimDuration,
// sim::SimTime, core::Epoch) exists to make uncompilable.
#include <cstdint>

struct ProbeConfig {
  std::int64_t interval_ns = 0;  // expect(raw-unit)
  double timeout_ms = 0.0;  // expect(raw-unit)
  std::int64_t queue_window = 0;  // expect(raw-unit)
};

struct LinkState {
  std::int64_t link_delay = 0;  // expect(raw-unit)
  double hop_latency = 0.0;  // expect(raw-unit)
  std::int64_t epoch = 0;  // expect(raw-unit)
};

std::int64_t smooth(std::int64_t last_rtt, double srtt_ms);  // expect(raw-unit) expect(raw-unit)
