// Corpus: allow-file() suppression. A file that *is* the sanctioned
// thread-pool boundary declares so once, and every thread-share and
// raw-thread finding in it is silenced — other rules stay active.
// intsched-lint: allow-file(thread-share, raw-thread)
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

// All of these would be thread-share findings without the file-level
// annotation above.
void pool_run(const std::vector<std::int64_t>& items) {
  std::mutex sink_mutex;
  std::int64_t sink = 0;
  std::vector<std::thread> workers;
  for (std::int64_t v : items) {
    workers.emplace_back([&sink_mutex, &sink, v] {
      const std::lock_guard<std::mutex> lock(sink_mutex);
      sink += v;
    });
  }
  for (std::thread& t : workers) t.join();
}
