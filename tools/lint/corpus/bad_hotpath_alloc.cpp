// Corpus: heap allocation inside scheduler hot-path functions. The
// lock-free decision path budget is zero allocations per call; every
// construct below either calls the allocator directly or constructs a
// container that will.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

struct Rank {
  int server = 0;
};

struct Scratch {
  std::vector<Rank> ranks;  // member scratch: fine, sized once
};

struct Ranker {
  Scratch scratch_;

  // Named hot-path function (HOT_PATH_FUNCTIONS).
  int pick_server(int device) {
    std::vector<Rank> local;  // expect(hotpath-alloc)
    auto owned = std::make_unique<Rank>();  // expect(hotpath-alloc)
    Rank* raw = new Rank{};  // expect(hotpath-alloc)
    void* c = std::malloc(64);  // expect(hotpath-alloc)
    std::string label = "srv";  // expect(hotpath-alloc)
    std::free(c);
    delete raw;
    (void)owned;
    (void)label;
    return device + static_cast<int>(local.size());
  }

  // Marked hot via annotation rather than the built-in name set.
  // intsched-lint: hot-path
  int rescore(int device) {
    std::vector<int> tmp;  // expect(hotpath-alloc)
    tmp.push_back(device);
    return tmp.back();
  }
};
