// Corpus: suppression syntax. Both same-line and previous-line allow()
// annotations must silence the finding; unrelated rules stay active.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Registry {
  std::unordered_map<std::int64_t, std::int64_t> counters_;
  std::unordered_set<std::int64_t> members_;

  // Order-insensitive reset: every value is overwritten independently.
  void reset_all() {
    // intsched-lint: allow(unordered-iter)
    for (auto& [id, value] : counters_) {
      value = 0;
    }
  }

  [[nodiscard]] std::int64_t cardinality_sum() const {
    std::int64_t total = 0;  // integer sum: order-insensitive by design
    for (const auto id : members_) {  // intsched-lint: allow(unordered-iter)
      total += id;
    }
    return total;
  }
};
