// Corpus: wall-clock reads. Simulation code must derive every timestamp
// from sim::SimTime so paired experiment arms replay identically.
#include <chrono>
#include <cstdint>
#include <ctime>

std::int64_t bad_chrono_now() {
  const auto t =
      std::chrono::steady_clock::now();  // expect(wall-clock)
  const auto u =
      std::chrono::system_clock::now();  // expect(wall-clock)
  return t.time_since_epoch().count() + u.time_since_epoch().count();
}

std::int64_t bad_ctime() {
  std::int64_t acc = 0;
  acc += time(nullptr);  // expect(wall-clock)
  acc += static_cast<std::int64_t>(clock());  // expect(wall-clock)
  struct timespec ts {};
  clock_gettime(0, &ts);  // expect(wall-clock)
  return acc + ts.tv_sec;
}
