// Corpus: patterns that must NOT be reported — ordered containers, sorted
// snapshots of hash maps, seeded engines, and SimTime-style clocks.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Row {
  std::int64_t id = 0;
  double value = 0.0;
};

class CleanTable {
 public:
  // Iterating a std::map is deterministic: key order.
  [[nodiscard]] double ordered_total() const {
    double sum = 0.0;
    for (const auto& [id, v] : ordered_) {
      sum += v;
    }
    return sum;
  }

  // The deterministic way to report a hash map: materialize, sort, emit.
  [[nodiscard]] std::vector<Row> sorted_rows() const {
    std::vector<Row> rows;
    rows.reserve(cells_.size());
    // intsched-lint: allow(unordered-iter)
    for (const auto& [id, v] : cells_) {
      rows.push_back(Row{id, v});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.id < b.id; });
    return rows;
  }

  // Point lookups into hash maps are always fine; only iteration order is
  // hazardous.
  [[nodiscard]] double lookup(std::int64_t id) const {
    const auto it = cells_.find(id);
    return it == cells_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::int64_t, double> ordered_;
  std::unordered_map<std::int64_t, double> cells_;
};

// A local clock abstraction named like the C API must not trip wall-clock.
struct FakeClock {
  // Corpus fixture models a raw tick count on purpose (the real code
  // would use sim::SimTime).  // intsched-lint: allow(raw-unit)
  std::int64_t now_ns = 0;
  [[nodiscard]] std::int64_t local_time() const { return now_ns; }
};

std::int64_t virtual_time(const FakeClock& c) { return c.local_time(); }
