// Corpus: nondeterministic randomness. Every random draw must come from a
// named sim::Rng stream derived from the experiment's master seed.
#include <cstdlib>
#include <random>

int bad_c_rand() {
  srand(42);  // expect(unseeded-rng)
  return rand();  // expect(unseeded-rng)
}

int bad_random_device() {
  std::random_device rd;  // expect(unseeded-rng)
  return static_cast<int>(rd());
}

int bad_default_engines() {
  std::mt19937 gen;  // expect(unseeded-rng)
  std::mt19937_64 gen64;  // expect(unseeded-rng)
  std::default_random_engine eng;  // expect(unseeded-rng)
  return static_cast<int>(gen() + gen64() + eng());
}

int ok_seeded_engine(std::uint64_t seed) {
  std::mt19937 gen{static_cast<std::uint32_t>(seed)};  // seeded: fine
  return static_cast<int>(gen());
}
