// Corpus: ordering keyed on raw pointer values — the order is whatever the
// allocator handed out, which varies run to run (and under ASLR).
#include <map>
#include <set>

struct Node {
  int id = 0;
};

std::map<Node*, int> owners;  // expect(pointer-key)
std::set<const Node*> live;  // expect(pointer-key)

bool bad_less() {
  return std::less<Node*>{}(nullptr, nullptr);  // expect(pointer-key)
}
