// Corpus: threading primitives outside the sanctioned thread-pool
// boundary. The simulator is single-threaded by contract; cross-thread
// shared mutable state anywhere else silently breaks the byte-identical
// same-seed reproducibility guarantee (results then depend on --jobs and
// scheduling jitter, not just the seed).
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>

std::atomic<std::int64_t> g_counter{0};  // expect(thread-share)
thread_local std::int64_t t_scratch = 0;  // expect(thread-share)

void bad_spawn() {
  // A raw spawn is both shared state and an unsanctioned thread.
  std::thread worker([] { g_counter += 1; });  // expect(thread-share) // expect(raw-thread)
  worker.join();
}

std::int64_t bad_async() {
  auto f = std::async([] { return t_scratch; });  // expect(thread-share)
  return f.get();
}

struct BadShared {
  // A mutex member with no GUARDED_BY field also trips mutex-no-guard:
  // the lock names nothing it protects.
  std::mutex mutex_;  // expect(thread-share) // expect(mutex-no-guard)
  std::condition_variable cv_;  // expect(thread-share)
  std::int64_t value_ = 0;
};
