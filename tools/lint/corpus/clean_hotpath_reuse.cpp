// Corpus: allocation-free hot path. The scratch buffer is a member sized
// outside the decision path; the hot function only reads, indexes, and
// writes in place. Cold-path functions may allocate freely.
#include <string>
#include <vector>

struct Rank {
  int server = 0;
};

struct Ranker {
  std::vector<Rank> scratch_;

  // Cold path: allocation is fine here — not in HOT_PATH_FUNCTIONS and
  // not annotated hot.
  void rebuild(int servers) {
    scratch_.assign(static_cast<unsigned>(servers), Rank{});
    std::string log = "rebuilt";
    (void)log;
  }

  // Hot path: reuses the member scratch, zero allocator calls.
  int pick_server(int device) {
    int best = 0;
    for (const Rank& r : scratch_) {
      if (r.server < scratch_[static_cast<unsigned>(best)].server) {
        best = r.server;
      }
    }
    return best + device;
  }
};
