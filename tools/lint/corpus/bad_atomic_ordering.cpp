// Corpus: memory_order_relaxed outside a counter bump. Relaxed accesses
// establish no happens-before edge, so a relaxed flag or pointer read
// can observe state from before the write that "published" it — the
// classic latent race. Plain fetch_add/fetch_sub statistics counters are
// the one sanctioned use. thread-share is suppressed file-wide so this
// corpus exercises atomic-ordering in isolation.
// intsched-lint: allow-file(thread-share)
#include <atomic>
#include <cstdint>

std::atomic<bool> g_ready{false};
std::atomic<std::int64_t> g_hits{0};

void publish_wrong() {
  g_ready.store(true, std::memory_order_relaxed);  // expect(atomic-ordering)
}

bool peek_wrong() {
  return g_ready.load(std::memory_order_relaxed);  // expect(atomic-ordering)
}

// Clean: a pure statistics bump never orders anything.
void count_hit() {
  g_hits.fetch_add(1, std::memory_order_relaxed);
}

// Clean: the seq_cst default needs no justification.
bool peek_right() { return g_ready.load(); }
