// Corpus: the sanctioned shape — a mutex member whose class names the
// state it guards via GUARDED_BY annotations (thread_annot.hpp), so the
// -Wthread-safety preset can verify every access holds the lock. Must
// produce zero findings. thread-share is suppressed file-wide (this is
// corpus code standing in for a sanctioned boundary file).
// intsched-lint: allow-file(thread-share)
#include <cstdint>
#include <mutex>

#define GUARDED_BY(x)  // stand-in for INTSCHED_GUARDED_BY in real code

class GuardedCounter {
 public:
  void bump() {
    const std::lock_guard<std::mutex> guard(mutex_);
    ++value_;
  }

 private:
  std::mutex mutex_;
  std::int64_t value_ GUARDED_BY(mutex_) = 0;
};
