// Corpus: the serving-path mistakes DESIGN.md §13 forbids. The request
// loop must answer from a borrowed snapshot handle with zero allocator
// calls; everything below either allocates per request or lets a view
// handle (or a pointer into it) outlive the frame that pinned it.
#include <functional>
#include <memory>
#include <string>
#include <vector>

struct Rank {
  int server = 0;
};

struct View {
  Rank best;
};

struct ShardedMap {
  std::shared_ptr<const View> metro_snapshot() const { return view_; }
  std::shared_ptr<const View> view_;
};

struct Scheduler {
  void post(std::function<void()> cb);
};

struct Frontend {
  ShardedMap map;
  Scheduler sched;
  const void* cached_ = nullptr;

  // The wire-to-wire request loop, marked hot like the real serve().
  // intsched-lint: hot-path
  int serve_request(int origin) {
    std::vector<Rank> staging;  // expect(hotpath-alloc)
    std::string trace = "serve";  // expect(hotpath-alloc)
    auto ctx = std::make_shared<Rank>();  // expect(hotpath-alloc)
    (void)trace;
    (void)ctx;
    staging.push_back(Rank{origin});
    return staging.back().server;
  }

  const void* answer_and_leak() {
    auto view = map.metro_snapshot();
    return &view;  // expect(snapshot-escape)
  }

  void cache_view_pointer() {
    auto snap = map.metro_snapshot();
    cached_ = &snap;  // expect(snapshot-escape)
  }

  void defer_over_borrowed_view() {
    auto snap = map.metro_snapshot();
    sched.post([&] { (void)snap->best.server; });  // expect(snapshot-escape)
  }
};
