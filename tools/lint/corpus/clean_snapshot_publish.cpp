// Corpus: the sanctioned snapshot-publish shape (RCU-style read path,
// mirrors core::ConcurrentNetworkMap). One writer mutex with its guarded
// state named via GUARDED_BY; the published std::atomic<std::shared_ptr>
// is deliberately unguarded — readers acquire-load it with zero locks,
// writers rebuild and release-store it inside the critical section. The
// relaxed fetch_add on the query counter sits in the same statement as
// its ordering, matching the atomic-ordering rule. Must produce zero
// findings. thread-share is suppressed file-wide (corpus stand-in for a
// sanctioned concurrent-container file).
// intsched-lint: allow-file(thread-share)
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#define GUARDED_BY(x)  // stand-in for INTSCHED_GUARDED_BY in real code

struct Snapshot {
  // Fixture keeps the raw epoch to stay dependency-free; real code uses
  // core::Epoch (types.hpp).  // intsched-lint: allow(raw-unit)
  std::int64_t epoch = 0;
};

class SnapshotPublisher {
 public:
  void ingest() {
    const std::lock_guard<std::mutex> guard(mutex_);
    ++epoch_;
    auto next = std::make_shared<const Snapshot>(Snapshot{epoch_});
    snapshot_.store(std::move(next), std::memory_order_release);
  }

  [[nodiscard]] std::int64_t read_epoch() const {
    queries_.fetch_add(1, std::memory_order_relaxed);
    const std::shared_ptr<const Snapshot> snap =
        snapshot_.load(std::memory_order_acquire);
    return snap ? snap->epoch : -1;
  }

 private:
  mutable std::mutex mutex_;
  std::int64_t epoch_ GUARDED_BY(mutex_) = 0;
  // Lock-free publication point: NOT guarded, by design.
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  mutable std::atomic<std::int64_t> queries_{0};
};
