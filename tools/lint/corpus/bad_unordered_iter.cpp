// Corpus: hash-ordered iteration feeding ordered output. Every line marked
// expect(<rule>) must be reported by detlint; nothing else may be.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Report {
  void add_row(const std::string& s);
};

class Table {
 public:
  std::unordered_map<std::int64_t, double> cells_;
  std::unordered_set<std::string> names_;
  [[nodiscard]] std::unordered_map<std::int64_t, double> snapshot() const;
};

using LoadMap = std::unordered_map<std::int64_t, std::int64_t>;

void print_cells(const Table& t, Report& out) {
  for (const auto& [id, value] : t.cells_) {  // expect(unordered-iter)
    out.add_row(std::to_string(id) + " " + std::to_string(value));
  }
}

void print_names(const Table* t, Report& out) {
  for (const std::string& n : t->names_) {  // expect(unordered-iter)
    out.add_row(n);
  }
}

void print_snapshot(const Table& t, Report& out) {
  for (const auto& [id, value] : t.snapshot()) {  // expect(unordered-iter)
    out.add_row(std::to_string(id));
  }
}

void print_alias(const LoadMap& loads, Report& out) {
  LoadMap local = loads;
  for (const auto& kv : local) {  // expect(unordered-iter)
    out.add_row(std::to_string(kv.first));
  }
}
