#!/usr/bin/env python3
"""intsched whole-program contract analyzer (detlint v3).

Where detlint.py checks single files, this tool checks the *call graph*:
it parses the tree (libclang over compile_commands.json when available, a
dependency-free textual frontend otherwise), builds a cross-TU call
graph, and verifies transitive contracts from annotated roots
(DESIGN.md §14).

Hot-path reachability: every function marked INTSCHED_HOTPATH
(core/contracts.hpp) is a root. Nothing transitively reachable from a
root may:

  hot-alloc          allocate (new / malloc / make_unique / make_shared /
                     std::to_string / construction of an allocating
                     container or string). Capacity-reusing calls
                     (push_back into a retained scratch buffer) are the
                     sanctioned warm-path idiom and are not flagged —
                     the contract is the same "allocation-free once
                     warm" one the counting-operator-new test measures.
  hot-lock           acquire a lock (lock_guard/unique_lock/scoped_lock/
                     shared_lock, .lock(), std::call_once,
                     pthread_mutex_lock). The read path is lock-free by
                     construction (§10); a once-only memo fill is the
                     one sanctioned exception and carries a named
                     suppression where it happens.
  hot-io             block on I/O (printf family, iostream globals,
                     fstream construction, getline).
  hot-clock          read the wall clock (std::chrono ::now, time(),
                     gettimeofday, ...): decisions must be functions of
                     sim-time arguments, never of the host clock.
  hot-unordered-iter range-for over a std::unordered_* container:
                     hash-order iteration on the decision path is the
                     reproducibility bug detlint flags file-locally,
                     enforced here transitively.
  hot-coldcall       call a function marked INTSCHED_COLDPATH. Cold
                     functions are barriers (the analyzer does not
                     descend into them) and tripwires (reaching one from
                     hot code is itself a finding unless the call site
                     is suppressed with a named rule).

Snapshot lifetime (cross-function, whole program — not root-limited):
references into an RCU-published snapshot (RankSnapshot / MetroView)
must not outlive the handle that pins the epoch:

  snapshot-return    a function returns a pointer/reference rooted at a
                     locally acquired snapshot handle, or forwards a
                     callee's interior pointer out of its own frame.
  snapshot-store     a pointer/reference rooted at a locally acquired
                     handle — or at a snapshot-typed reference
                     parameter — is stored into a member (the
                     trailing-underscore convention) where it outlives
                     the publish epoch. The cross-function case is the
                     point: a helper that squirrels away `&param` is
                     flagged at the helper AND linked to every caller
                     that feeds it an epoch-bound view.

Suppression: `// intsched-contract: allow(<rule>): <reason>` on the
offending line or the line directly above it. Unknown rule names are
hard errors (a typo silently disables nothing) and unused suppressions
are reported (errors under --strict-suppressions), exactly as detlint
does for its own annotations.

Engines: `--engine clang` parses every TU in compile_commands.json with
libclang (python3-clang) for type-accurate call edges; `--engine text`
is the dependency-free fallback (same rule set, heuristic call
resolution); `--engine auto` (default) picks clang when importable.
`--require-libclang` makes a missing libclang a hard error (CI).

Exit status: 0 clean, 1 findings/hygiene errors, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

RULES = (
    "hot-alloc",
    "hot-lock",
    "hot-io",
    "hot-clock",
    "hot-unordered-iter",
    "hot-coldcall",
    "snapshot-return",
    "snapshot-store",
)

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".ipp")

HOT_TOKEN = "INTSCHED_HOTPATH"
COLD_TOKEN = "INTSCHED_COLDPATH"

SNAPSHOT_CLASSES = ("RankSnapshot", "MetroView")

ALLOW_RE = re.compile(r"//.*?\bintsched-contract:\s*allow\(([^)]*)\)")
EXPECT_RE = re.compile(r"//.*?\bexpect\((\w[\w-]*)\)")
EXPECT_VIA_RE = re.compile(r"//.*?\bexpect-via\(([^)]+)\)")
EXPECT_ERROR_RE = re.compile(r"//.*?\bexpect-error\(([^)]+)\)")

# ---------------------------------------------------------------------------
# Shared lexical helpers (offset-preserving strip, brace/paren matching)
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            while i < n - 1 and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n - 1:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            q, j = c, i + 1
            while j < n and text[j] != q:
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i, min(j + 1, n)):
                if text[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_forward(text: str, open_idx: int, open_c: str, close_c: str) -> int:
    """Index just past the bracket matching text[open_idx]; -1 if none."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_c:
            depth += 1
        elif text[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def split_top_commas(s: str) -> List[str]:
    parts, depth, start = [], 0, 0
    for i, c in enumerate(s):
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(s[start:i])
            start = i + 1
    parts.append(s[start:])
    return [p for p in (x.strip() for x in parts) if p]


# ---------------------------------------------------------------------------
# Data model
# ---------------------------------------------------------------------------


@dataclass
class Fact:
    rule: str
    file: str
    line: int
    detail: str


@dataclass
class CallSite:
    name: str  # as written, e.g. "rank_into" or "Class::fn"
    receiver: Optional[str]  # terminal identifier of the receiver chain
    args: str  # raw argument text (stripped source)
    file: str
    line: int


@dataclass
class Function:
    qual: str  # "MetroView::rank_into" / "free_fn"
    name: str  # unqualified
    cls: Optional[str]
    file: str
    line: int
    hot: bool = False
    cold: bool = False
    returns_ptr_or_ref: bool = False
    params: List[Tuple[str, str]] = field(default_factory=list)  # (type, name)
    locals: Dict[str, str] = field(default_factory=dict)  # name -> class
    calls: List[CallSite] = field(default_factory=list)
    facts: List[Fact] = field(default_factory=list)
    # snapshot pass state
    handles: Set[str] = field(default_factory=set)  # locally acquired handles
    snap_params: Set[str] = field(default_factory=set)
    stores_param: List[Tuple[str, int]] = field(default_factory=list)
    returns_param_interior: List[Tuple[str, int]] = field(default_factory=list)
    body_text: str = ""  # stripped body (offset-local)
    body_file_offset: int = 0


@dataclass(frozen=True)
class Finding:
    rule: str
    file: str
    line: int
    message: str
    witness: Tuple[str, ...]  # qualified function names, root first

    def render(self) -> str:
        head = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        if len(self.witness) > 1:
            head += "\n    path: " + " -> ".join(self.witness)
        return head


# ---------------------------------------------------------------------------
# Primitive-fact patterns (shared by both engines: applied to body text)
# ---------------------------------------------------------------------------

ALLOC_RES: Sequence[Tuple[re.Pattern, str]] = (
    (re.compile(r"(?<![\w:])new\b(?!\s*\()"), "raw `new`"),
    (re.compile(r"\bstd::make_(?:unique|shared)\s*<"),
     "std::make_unique/make_shared"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?(?:malloc|calloc|realloc|strdup)"
                r"\s*\("),
     "C heap allocation"),
    (re.compile(r"\bstd::(?:vector|deque|list|(?:unordered_)?(?:multi)?"
                r"(?:map|set)|basic_string|function|priority_queue|queue|"
                r"[io]?stringstream|ostringstream)\s*<[^;{}()]*>\s+"
                r"[A-Za-z_]\w*\s*[;({=]"),
     "allocating container constructed locally"),
    (re.compile(r"\bstd::string\s+[A-Za-z_]\w*\s*[;({=]"),
     "std::string constructed locally"),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string allocates"),
)

LOCK_RES: Sequence[Tuple[re.Pattern, str]] = (
    (re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)"
                r"\s*[<{(]"),
     "lock acquisition"),
    (re.compile(r"(?:\.|->)\s*(?:lock|try_lock|lock_shared)\s*\(\s*\)"),
     "explicit .lock()"),
    (re.compile(r"\bstd::call_once\s*\("),
     "std::call_once (blocks every caller while the fill runs)"),
    (re.compile(r"\bpthread_mutex_(?:lock|trylock)\s*\("),
     "pthread mutex acquisition"),
)

IO_RES: Sequence[Tuple[re.Pattern, str]] = (
    (re.compile(r"(?<![\w.>:])(?:printf|fprintf|fputs|fputc|fwrite|fread|"
                r"fopen|fscanf|puts)\s*\("),
     "C stdio call"),
    (re.compile(r"\bstd::(?:cout|cerr|clog|cin)\b"), "iostream global"),
    (re.compile(r"\bstd::(?:basic_)?[io]?fstream\b"), "fstream construction"),
    (re.compile(r"\bstd::getline\s*\("), "std::getline"),
)

CLOCK_RES: Sequence[Tuple[re.Pattern, str]] = (
    (re.compile(r"std::chrono::(?:system|steady|high_resolution)_clock"
                r"\s*::\s*now"),
     "wall-clock read"),
    (re.compile(r"(?<![\w.>:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time() wall-clock read"),
    (re.compile(r"(?<![\w.>:])(?:clock_gettime|gettimeofday)\s*\("),
     "C wall-clock API"),
)

FACT_FAMILIES: Sequence[Tuple[str, Sequence[Tuple[re.Pattern, str]]]] = (
    ("hot-alloc", ALLOC_RES),
    ("hot-lock", LOCK_RES),
    ("hot-io", IO_RES),
    ("hot-clock", CLOCK_RES),
)

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\s*<")
IDENT_AFTER_TYPE_RE = re.compile(r"\s*[&*]*\s*([A-Za-z_]\w*)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
LAST_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*$")

# Locally acquired snapshot handles: `auto v = x.view();`,
# `... snap = map.snapshot(...);`, `... s = svc.acquire();`
HANDLE_BIND_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*[\w.\->:\[\]]*\b"
    r"(?:view|\w*snapshot\w*|acquire)\s*\(")

KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "catch", "alignof",
    "decltype", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "noexcept", "assert", "defined", "new", "delete", "throw",
    "alignas", "static_assert", "typeid", "requires", "co_await", "co_yield",
    "co_return", "operator", "else", "do", "case", "default",
))

# Method names too generic to link by bare-name fallback: these are
# overwhelmingly std-container calls, and a wrong edge here would poison
# the reachability analysis with false paths.
STD_METHOD_NAMES = frozenset((
    "find", "begin", "end", "size", "empty", "clear", "push_back",
    "emplace_back", "insert", "erase", "count", "contains", "front", "back",
    "data", "reserve", "resize", "at", "get", "reset", "load", "store",
    "value", "index", "valid", "swap", "min", "max", "ns", "bps", "first",
    "second", "has_value", "fetch_add", "fetch_sub", "c_str", "substr",
    "length", "rbegin", "rend", "lower_bound", "upper_bound", "emplace",
    "pop", "push", "top", "str", "reject", "what", "none", "invalid", "zero",
))


def collect_unordered_names(stripped: str) -> Set[str]:
    names: Set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(stripped):
        open_idx = stripped.index("<", m.start())
        end = match_forward(stripped, open_idx, "<", ">")
        if end > 0:
            im = IDENT_AFTER_TYPE_RE.match(stripped, end)
            if im:
                names.add(im.group(1))
    return names


# ---------------------------------------------------------------------------
# Textual frontend: function extraction
# ---------------------------------------------------------------------------

CLASS_OPEN_RE = re.compile(
    r"(?<!enum\s)(?<!enum)\b(?:class|struct)\s+([A-Za-z_]\w*)"
    r"(?:\s+final)?[^;{}()]*?\{")
FUNC_NAME_RE = re.compile(
    r"([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
MEMBER_DECL_RE = re.compile(
    r"([A-Za-z_][\w:]*(?:\s*<[^;{}]*?>)?(?:\s*[*&])*)\s+"
    r"([A-Za-z_]\w*)\s*(?:;|=|\{)")
LOCAL_DECL_RE = re.compile(
    r"([A-Za-z_][\w:]*(?:\s*<[^;{}]*?>)?)\s*([*&]*)\s+([A-Za-z_]\w*)"
    r"\s*(?:=|\{)")
AUTO_DECL_RE = re.compile(
    r"\bauto\b[\s*&]*?([A-Za-z_]\w*)\s*=\s*([^;]{1,160})")
CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:<[^<>;(){}&|]{0,80}>)?\s*\(")


def class_spans_with_names(stripped: str) -> List[Tuple[str, int, int]]:
    spans: List[Tuple[str, int, int]] = []
    for m in CLASS_OPEN_RE.finditer(stripped):
        open_idx = stripped.index("{", m.start())
        end = match_forward(stripped, open_idx, "{", "}")
        spans.append((m.group(1), open_idx, end if end > 0 else len(stripped)))
    return spans


def innermost_class(spans: Sequence[Tuple[str, int, int]],
                    pos: int) -> Optional[str]:
    best: Optional[Tuple[str, int, int]] = None
    for name, open_idx, end in spans:
        if open_idx < pos < end and (best is None or open_idx > best[1]):
            best = (name, open_idx, end)
    return best[0] if best else None


def at_class_depth_one(stripped: str, spans: Sequence[Tuple[str, int, int]],
                       pos: int) -> bool:
    """True when `pos` sits directly in a class body (not nested braces)."""
    best: Optional[Tuple[str, int, int]] = None
    for name, open_idx, end in spans:
        if open_idx < pos < end and (best is None or open_idx > best[1]):
            best = (name, open_idx, end)
    if best is None:
        return False
    depth = 0
    for i in range(best[1], pos):
        if stripped[i] == "{":
            depth += 1
        elif stripped[i] == "}":
            depth -= 1
    return depth == 1


def scan_past_qualifiers(stripped: str, pos: int) -> Tuple[str, int]:
    """From just past a parameter list's ')', classify the declarator:
    returns ("def", body_open), ("decl", end) or ("no", pos)."""
    n = len(stripped)
    i = pos
    while i < n:
        c = stripped[i]
        if c.isspace():
            i += 1
        elif c == "{":
            return ("def", i)
        elif c == ";":
            return ("decl", i + 1)
        elif c == "=":  # = default / = delete / = 0
            j = stripped.find(";", i)
            return ("decl", (j + 1) if j >= 0 else n)
        elif c == ":":  # constructor init list
            if i + 1 < n and stripped[i + 1] == ":":
                return ("no", pos)
            i += 1
            while i < n:
                while i < n and stripped[i].isspace():
                    i += 1
                m = re.match(r"[A-Za-z_][\w:]*", stripped[i:])
                if not m:
                    return ("no", pos)
                i += m.end()
                while i < n and stripped[i].isspace():
                    i += 1
                if i < n and stripped[i] == "<":
                    e = match_forward(stripped, i, "<", ">")
                    if e < 0:
                        return ("no", pos)
                    i = e
                    while i < n and stripped[i].isspace():
                        i += 1
                if i < n and stripped[i] in "({":
                    close = ")" if stripped[i] == "(" else "}"
                    e = match_forward(stripped, i, stripped[i], close)
                    if e < 0:
                        return ("no", pos)
                    i = e
                while i < n and stripped[i].isspace():
                    i += 1
                if i < n and stripped[i] == ",":
                    i += 1
                    continue
                if i < n and stripped[i] == "{":
                    return ("def", i)
                return ("no", pos)
            return ("no", pos)
        elif c == "-" and i + 1 < n and stripped[i + 1] == ">":
            i += 2  # trailing return type: consume type tokens
        elif c == "<":
            e = match_forward(stripped, i, "<", ">")
            if e < 0:
                return ("no", pos)
            i = e
        elif re.match(r"[A-Za-z_]", c):
            m = re.match(r"[A-Za-z_][\w:]*", stripped[i:])
            i += m.end()
            while i < n and stripped[i].isspace():
                i += 1
            if i < n and stripped[i] == "(":
                e = match_forward(stripped, i, "(", ")")
                if e < 0:
                    return ("no", pos)
                i = e
        elif c in "*&":
            i += 1  # pointer/ref in a trailing return type
        else:
            return ("no", pos)
    return ("no", pos)


def header_prefix(stripped: str, name_start: int) -> str:
    """Text between the previous statement boundary and the function name:
    return type, attributes, annotation macros, template header."""
    j = name_start - 1
    while j >= 0 and stripped[j] not in ";{}":
        j -= 1
    prefix = stripped[j + 1:name_start]
    # Drop access specifiers that slipped in ("public:" has no ; or }).
    return re.sub(r"\b(?:public|private|protected)\s*:", " ", prefix)


class Program:
    """The whole-program model both engines produce."""

    def __init__(self) -> None:
        self.functions: Dict[str, Function] = {}  # qual -> merged record
        self.by_name: Dict[str, List[Function]] = {}
        self.classes: Set[str] = set()
        self.members: Dict[str, Dict[str, str]] = {}  # class -> member->type
        self.unordered_pool: Set[str] = set()
        self.files: Dict[str, List[str]] = {}  # path -> raw lines
        self.engine = "text"

    def add_function(self, fn: Function) -> Function:
        prev = self.functions.get(fn.qual)
        if prev is None:
            self.functions[fn.qual] = fn
            self.by_name.setdefault(fn.name, []).append(fn)
            return fn
        # Merge: annotations union; a definition (has body) wins over a
        # declaration for body-derived state.
        prev.hot = prev.hot or fn.hot
        prev.cold = prev.cold or fn.cold
        prev.returns_ptr_or_ref = prev.returns_ptr_or_ref or fn.returns_ptr_or_ref
        if fn.body_text and not prev.body_text:
            prev.body_text = fn.body_text
            prev.body_file_offset = fn.body_file_offset
            prev.file, prev.line = fn.file, fn.line
            prev.calls, prev.facts = fn.calls, fn.facts
            prev.locals, prev.params = fn.locals, fn.params
            prev.handles = fn.handles
        elif fn.params and not prev.params:
            prev.params = fn.params
        return prev

    def resolve_type(self, type_text: str) -> Optional[str]:
        for cls in self.classes:
            if re.search(rf"\b{cls}\b", type_text):
                return cls
        return None


def extract_receiver(body: str, call_start: int) -> Optional[str]:
    """Terminal identifier of the receiver chain before `.` / `->`."""
    j = call_start - 1
    while j >= 0 and body[j].isspace():
        j -= 1
    if j >= 1 and body[j] == ">" and body[j - 1] == "-":
        j -= 2
    elif j >= 0 and body[j] == ".":
        j -= 1
    else:
        return None
    while j >= 0 and body[j].isspace():
        j -= 1
    # Skip one balanced [] or () group (indexing / call result).
    while j >= 0 and body[j] in ")]":
        close = body[j]
        open_c = "(" if close == ")" else "["
        depth = 0
        while j >= 0:
            if body[j] == close:
                depth += 1
            elif body[j] == open_c:
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        j -= 1
        while j >= 0 and body[j].isspace():
            j -= 1
    end = j + 1
    while j >= 0 and (body[j].isalnum() or body[j] == "_"):
        j -= 1
    ident = body[j + 1:end]
    return ident if ident else None


def analyze_body(prog: Program, fn: Function, stripped: str, path: str,
                 body_open: int, body_end: int) -> None:
    body = stripped[body_open:body_end]
    fn.body_text = body
    fn.body_file_offset = body_open

    def file_line(rel: int) -> int:
        return line_of(stripped, body_open + rel)

    # Primitive facts.
    for rule, patterns in FACT_FAMILIES:
        for pattern, what in patterns:
            for m in pattern.finditer(body):
                fn.facts.append(Fact(rule, path, file_line(m.start()), what))

    # Unordered iteration (needs the cross-file name pool; the pool is
    # complete before analysis because parsing is two-phase).
    for m in RANGE_FOR_RE.finditer(body):
        open_paren = body.index("(", m.start())
        close = match_forward(body, open_paren, "(", ")")
        if close < 0:
            continue
        head = body[open_paren + 1:close - 1]
        split = -1
        k = 0
        while k < len(head):
            if head[k] == ":":
                if k + 1 < len(head) and head[k + 1] == ":":
                    k += 2
                    continue
                split = k
                break
            k += 1
        if split < 0:
            continue
        tm = LAST_IDENT_RE.search(head[split + 1:].strip())
        if tm and tm.group(1) in prog.unordered_pool:
            fn.facts.append(Fact(
                "hot-unordered-iter", path, file_line(m.start()),
                f"range-for over unordered container '{tm.group(1)}'"))

    # Local declarations -> class types (for receiver resolution).
    for m in LOCAL_DECL_RE.finditer(body):
        type_text, name = m.group(1), m.group(3)
        if type_text in ("return", "delete", "case"):
            continue
        cls = prog.resolve_type(type_text)
        if cls:
            fn.locals[name] = cls
    for m in AUTO_DECL_RE.finditer(body):
        name, rhs = m.group(1), m.group(2)
        if name not in fn.locals:
            cls = prog.resolve_type(rhs)
            if cls:
                fn.locals[name] = cls

    # Snapshot handles acquired in this frame.
    for m in HANDLE_BIND_RE.finditer(body):
        fn.handles.add(m.group(1))
    for m in LOCAL_DECL_RE.finditer(body):
        type_text, name = m.group(1), m.group(3)
        if "shared_ptr" in type_text and any(
                s in type_text for s in SNAPSHOT_CLASSES):
            fn.handles.add(name)

    # Call sites.
    for m in CALL_RE.finditer(body):
        name = m.group(1)
        if name in KEYWORDS:
            continue
        open_paren = body.index("(", m.end() - 1)
        close = match_forward(body, open_paren, "(", ")")
        args = body[open_paren + 1:close - 1] if close > 0 else ""
        fn.calls.append(CallSite(
            name=name,
            receiver=extract_receiver(body, m.start()),
            args=args,
            file=path,
            line=file_line(m.start())))


def parse_file_textual(prog: Program, path: str) -> None:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    prog.files[path] = text.splitlines()
    stripped = strip_comments_and_strings(text)
    prog.unordered_pool |= collect_unordered_names(stripped)
    spans = class_spans_with_names(stripped)
    for name, _, _ in spans:
        prog.classes.add(name)

    # Member declarations (class depth 1).
    for m in MEMBER_DECL_RE.finditer(stripped):
        cls = innermost_class(spans, m.start())
        if cls is None or not at_class_depth_one(stripped, spans, m.start()):
            continue
        prog.members.setdefault(cls, {})[m.group(2)] = m.group(1)

    # Function definitions and declarations.
    consumed_until = 0
    for m in FUNC_NAME_RE.finditer(stripped):
        if m.start() < consumed_until:
            continue
        raw_name = re.sub(r"\s+", "", m.group(1))
        base = raw_name.split("::")[-1].lstrip("~")
        if base in KEYWORDS or raw_name.startswith("INTSCHED_") \
                or base.startswith("__"):
            continue
        # Preprocessor lines are not declarations (`#define X attr(...)`).
        ls = stripped.rfind("\n", 0, m.start()) + 1
        if stripped[ls:m.start()].lstrip().startswith("#"):
            continue
        open_paren = stripped.index("(", m.end() - 1)
        close = match_forward(stripped, open_paren, "(", ")")
        if close < 0:
            continue
        kind, after = scan_past_qualifiers(stripped, close)
        if kind == "no":
            continue
        prefix = header_prefix(stripped, m.start())
        if "::" in raw_name:
            parts = raw_name.split("::")
            cls: Optional[str] = parts[-2]
            qual = f"{parts[-2]}::{parts[-1]}"
        else:
            cls = innermost_class(spans, m.start())
            qual = f"{cls}::{base}" if cls else base
        fn = Function(
            qual=qual, name=base, cls=cls, file=path,
            line=line_of(stripped, m.start()),
            hot=HOT_TOKEN in prefix, cold=COLD_TOKEN in prefix,
            returns_ptr_or_ref=bool(re.search(r"[*&]\s*$", prefix.strip())))
        params_text = stripped[open_paren + 1:close - 1]
        for p in split_top_commas(params_text):
            pm = re.match(r"(.*?)([A-Za-z_]\w*)\s*(?:=[^,]*)?$", p.strip())
            if pm and pm.group(1).strip():
                fn.params.append((pm.group(1).strip(), pm.group(2)))
        fn = prog.add_function(fn)
        if kind == "def":
            body_end = match_forward(stripped, after, "{", "}")
            if body_end < 0:
                body_end = len(stripped)
            if not fn.body_text:
                fn.file, fn.line = path, line_of(stripped, m.start())
                analyze_body(prog, fn, stripped, path, after, body_end)
            consumed_until = body_end
        else:
            consumed_until = after


def build_program_textual(paths: Sequence[str]) -> Program:
    prog = Program()
    # Phase 1: discover classes/members and the unordered pool everywhere
    # (receiver resolution and the unordered rule need the global sets).
    texts: Dict[str, str] = {}
    for path in paths:
        with open(path, encoding="utf-8", errors="replace") as f:
            texts[path] = f.read()
        stripped = strip_comments_and_strings(texts[path])
        prog.unordered_pool |= collect_unordered_names(stripped)
        for name, _, _ in class_spans_with_names(stripped):
            prog.classes.add(name)
    # Phase 2: full parse (functions, bodies, facts, calls).
    for path in paths:
        parse_file_textual(prog, path)
    prog.engine = "text"
    return prog


# ---------------------------------------------------------------------------
# libclang frontend (type-accurate call edges; same fact regexes on the
# function's source extent so both engines agree on the rule semantics)
# ---------------------------------------------------------------------------


def norm_path(p: str) -> str:
    rel = os.path.relpath(p)
    return rel if not rel.startswith("..") else os.path.abspath(p)


def libclang_available() -> bool:
    try:
        from clang import cindex  # type: ignore  # noqa: F401
        return True
    except ImportError:
        return False


def build_program_libclang(paths: Sequence[str],
                           compile_commands: Optional[str]) -> Program:
    from clang import cindex  # type: ignore

    prog = Program()
    prog.engine = "clang"
    index = cindex.Index.create()
    path_set = {os.path.abspath(p) for p in paths}

    # Compile args per TU: from compile_commands.json when given,
    # otherwise a plain -std=c++20 parse (corpus mode).
    tu_args: Dict[str, List[str]] = {}
    tus: List[str] = []
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, encoding="utf-8") as f:
            for entry in json.load(f):
                src = os.path.abspath(
                    os.path.join(entry["directory"], entry["file"]))
                if src not in path_set:
                    continue
                raw = entry.get("arguments") or entry["command"].split()
                args = [a for a in raw[1:]
                        if a != "-c" and a != entry["file"]
                        and not a.endswith(".o")]
                cleaned: List[str] = []
                skip = False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a == "-o":
                        skip = True
                        continue
                    cleaned.append(a)
                tu_args[src] = cleaned
                tus.append(src)
    for p in sorted(path_set):
        if p.endswith((".cpp", ".cc", ".cxx")) and p not in tu_args:
            tu_args[p] = ["-std=c++20"]
            tus.append(p)

    strippeds: Dict[str, str] = {}
    for p in sorted(path_set):
        np = norm_path(p)
        with open(p, encoding="utf-8", errors="replace") as f:
            text = f.read()
        strippeds[np] = strip_comments_and_strings(text)
        prog.files[np] = text.splitlines()
        prog.unordered_pool |= collect_unordered_names(strippeds[np])
        for name, _, _ in class_spans_with_names(strippeds[np]):
            prog.classes.add(name)

    usr_to_qual: Dict[str, str] = {}

    def qual_of(cursor) -> str:
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (
                cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL,
                cindex.CursorKind.CLASS_TEMPLATE):
            return f"{parent.spelling}::{cursor.spelling}"
        return cursor.spelling

    fn_kinds = (
        cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE)

    def visit(cursor) -> None:
        # Only descend into subtrees whose source lives in the scanned
        # set: project namespaces/classes are in-scope blocks in our own
        # files, while `namespace std` et al. live in system headers and
        # are skipped wholesale (keeps TU walks near-linear in our code).
        for child in cursor.get_children():
            loc_file = child.location.file
            if loc_file is None or \
                    os.path.abspath(loc_file.name) not in path_set:
                continue
            if child.kind in fn_kinds:
                handle_function(child)
            visit(child)

    def handle_function(cursor) -> None:
        path = norm_path(os.path.abspath(cursor.location.file.name))
        qual = qual_of(cursor)
        base = cursor.spelling
        cls = qual.split("::")[0] if "::" in qual else None
        annotations = [c.spelling for c in cursor.get_children()
                       if c.kind == cindex.CursorKind.ANNOTATE_ATTR]
        ret = cursor.result_type.spelling if cursor.result_type else ""
        fn = Function(
            qual=qual, name=base, cls=cls, file=path,
            line=cursor.location.line,
            hot="intsched::hotpath" in annotations,
            cold="intsched::coldpath" in annotations,
            returns_ptr_or_ref=bool(re.search(r"[*&]\s*$", ret.strip())))
        for arg in cursor.get_arguments():
            fn.params.append((arg.type.spelling, arg.spelling))
        fn = prog.add_function(fn)
        usr = cursor.get_usr()
        if usr:
            usr_to_qual.setdefault(usr, fn.qual)
        if not cursor.is_definition() or fn.body_text:
            return
        ext = cursor.extent
        stripped = strippeds[path]
        start = ext.start.offset
        body_open = stripped.find("{", start, ext.end.offset)
        if body_open < 0:
            return
        fn.file, fn.line = path, cursor.location.line
        analyze_body(prog, fn, stripped, path, body_open, ext.end.offset)
        # Replace the heuristic call list with AST-accurate edges where
        # the AST resolves the callee; keep textual sites otherwise.
        ast_calls: List[CallSite] = []

        def walk_calls(c) -> None:
            for ch in c.get_children():
                if ch.kind == cindex.CursorKind.CALL_EXPR:
                    ref = ch.referenced
                    if ref is not None and ref.location.file is not None \
                            and os.path.abspath(
                                ref.location.file.name) in path_set:
                        ast_calls.append(CallSite(
                            name=qual_of(ref), receiver=None, args="",
                            file=path, line=ch.location.line))
                walk_calls(ch)

        walk_calls(cursor)
        if ast_calls:
            # Merge: AST edges are authoritative; retain textual sites for
            # arg-text-dependent checks (snapshot pass) — dedupe later.
            fn.calls.extend(ast_calls)

    for tu_path in tus:
        tu = index.parse(tu_path, args=tu_args[tu_path])
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(
                f"libclang failed to parse {tu_path}: {fatal[0].spelling}")
        visit(tu.cursor)
    # Headers never reached through a TU (pure-header corpus cases): parse
    # them standalone so their functions still enter the graph.
    seen_files = {fn.file for fn in prog.functions.values()}
    for p in sorted(path_set):
        if norm_path(p) not in seen_files and p.endswith((".hpp", ".hh", ".h")):
            tu = index.parse(p, args=["-std=c++20", "-xc++"])
            visit(tu.cursor)
    return prog


# ---------------------------------------------------------------------------
# Call resolution (textual edges), reachability, suppression accounting
# ---------------------------------------------------------------------------


def resolve_call(prog: Program, caller: Function,
                 site: CallSite) -> Optional[Function]:
    if "::" in site.name:
        return prog.functions.get(site.name.split("::", 1)[0] + "::" +
                                  site.name.rsplit("::", 1)[-1]) \
            or prog.functions.get(site.name)
    if site.receiver is not None:
        recv_cls: Optional[str] = None
        if site.receiver == "this":
            recv_cls = caller.cls
        else:
            recv_cls = caller.locals.get(site.receiver)
            if recv_cls is None:
                for ptype, pname in caller.params:
                    if pname == site.receiver:
                        recv_cls = prog.resolve_type(ptype)
                        break
            if recv_cls is None and caller.cls:
                mtype = prog.members.get(caller.cls, {}).get(site.receiver)
                if mtype:
                    recv_cls = prog.resolve_type(mtype)
            if recv_cls is None:
                # Unique member name across every known class.
                owners = [c for c, mem in prog.members.items()
                          if site.receiver in mem]
                if len(owners) == 1:
                    recv_cls = prog.resolve_type(
                        prog.members[owners[0]][site.receiver])
        if recv_cls is not None:
            target = prog.functions.get(f"{recv_cls}::{site.name}")
            if target is not None:
                return target
        if site.name in STD_METHOD_NAMES:
            return None
        candidates = prog.by_name.get(site.name, [])
        return candidates[0] if len(candidates) == 1 else None
    # Bare call: own class first, then free function, then unique method.
    if caller.cls:
        target = prog.functions.get(f"{caller.cls}::{site.name}")
        if target is not None:
            return target
    target = prog.functions.get(site.name)
    if target is not None:
        return target
    if site.name in STD_METHOD_NAMES:
        return None
    candidates = prog.by_name.get(site.name, [])
    return candidates[0] if len(candidates) == 1 else None


class SuppressionIndex:
    def __init__(self, files: Dict[str, List[str]]) -> None:
        self.by_site: Dict[Tuple[str, int], Set[str]] = {}
        self.errors: List[str] = []
        self.all: List[Tuple[str, int, str]] = []
        self.used: Set[Tuple[str, int, str]] = set()
        for path, lines in files.items():
            for i, raw in enumerate(lines, start=1):
                m = ALLOW_RE.search(raw)
                if not m:
                    continue
                for rule in (r.strip() for r in m.group(1).split(",")):
                    if rule not in RULES:
                        self.errors.append(
                            f"{path}:{i}: unknown rule '{rule}' in "
                            "intsched-contract allow() — this suppresses "
                            "nothing (typo?); known rules: --list-rules")
                        continue
                    self.by_site.setdefault((path, i), set()).add(rule)
                    self.all.append((path, i, rule))

    def allowed(self, path: str, line: int, rule: str) -> bool:
        for ln in (line, line - 1):
            if rule in self.by_site.get((path, ln), set()):
                self.used.add((path, ln, rule))
                return True
        return False

    def unused(self) -> List[str]:
        out = []
        for path, line, rule in self.all:
            if (path, line, rule) not in self.used:
                out.append(
                    f"{path}:{line}: unused suppression allow({rule}): no "
                    f"[{rule}] finding on this line or the next — delete "
                    "the annotation")
        return sorted(set(out))


def hot_reachability(prog: Program,
                     supp: SuppressionIndex) -> List[Finding]:
    findings: List[Finding] = []
    roots = sorted((f for f in prog.functions.values() if f.hot),
                   key=lambda f: f.qual)
    witness: Dict[str, Tuple[str, ...]] = {}
    queue: deque = deque()
    for r in roots:
        witness[r.qual] = (r.qual,)
        queue.append(r)
    while queue:
        fn = queue.popleft()
        path_here = witness[fn.qual]
        for fact in fn.facts:
            if supp.allowed(fact.file, fact.line, fact.rule):
                continue
            findings.append(Finding(
                fact.rule, fact.file, fact.line,
                f"{fact.detail} in '{fn.qual}' reachable from hot root "
                f"'{path_here[0]}' — the decision-path budget forbids it "
                "(DESIGN.md §14); hoist the work to the caller/publish "
                "side or suppress with a named rule and a reason",
                path_here))
        seen_edges: Set[Tuple[str, int]] = set()
        for site in fn.calls:
            target = resolve_call(prog, fn, site)
            if target is None or target.qual == fn.qual:
                continue
            edge_key = (target.qual, site.line)
            if edge_key in seen_edges:
                continue
            seen_edges.add(edge_key)
            if target.cold:
                if not supp.allowed(site.file, site.line, "hot-coldcall"):
                    findings.append(Finding(
                        "hot-coldcall", site.file, site.line,
                        f"'{fn.qual}' calls INTSCHED_COLDPATH function "
                        f"'{target.qual}': cold work (allocation, publish, "
                        "growth) reached from the hot path; restructure or "
                        "suppress with a named rule and a reason",
                        path_here + (target.qual,)))
                continue
            if target.qual not in witness:
                witness[target.qual] = path_here + (target.qual,)
                queue.append(target)
    return findings


# ---------------------------------------------------------------------------
# Snapshot-lifetime pass (whole program, cross-function)
# ---------------------------------------------------------------------------


def classify_snapshot_params(prog: Program) -> None:
    for fn in prog.functions.values():
        if not fn.body_text:
            continue
        for ptype, pname in fn.params:
            if "shared_ptr" in ptype:
                continue  # shared ownership pins the epoch: sanctioned
            if not any(s in ptype for s in SNAPSHOT_CLASSES):
                continue
            if "&" not in ptype and "*" not in ptype:
                continue  # by-value copy cannot dangle
            fn.snap_params.add(pname)
            body = fn.body_text

            def to_line(rel: int) -> int:
                return line_of_body(fn, rel)

            for m in re.finditer(
                    rf"(?:this\s*->\s*)?([A-Za-z_]\w*_)\s*=\s*&\s*{pname}\b",
                    body):
                fn.stores_param.append((pname, to_line(m.start())))
            for m in re.finditer(
                    rf"(?:this\s*->\s*)?([A-Za-z_]\w*_)\s*=\s*{pname}\s*"
                    rf"(?:\.|->)\s*(\w+)\s*\(", body):
                if callee_returns_ptr(prog, m.group(2)):
                    fn.stores_param.append((pname, to_line(m.start())))
            for m in re.finditer(rf"return\s*&\s*{pname}\b", body):
                fn.returns_param_interior.append((pname, to_line(m.start())))
            if fn.returns_ptr_or_ref:
                for m in re.finditer(
                        rf"return\s+{pname}\s*(?:\.|->)\s*(\w+)\s*\(", body):
                    if callee_returns_ptr(prog, m.group(1)):
                        fn.returns_param_interior.append(
                            (pname, to_line(m.start())))
                for m in re.finditer(rf"return\s+{pname}\s*;", body):
                    fn.returns_param_interior.append(
                        (pname, to_line(m.start())))


def line_of_body(fn: Function, rel: int) -> int:
    # body_text offsets are relative to the stripped file; we stored the
    # body's file offset, and newlines survive stripping, so counting
    # newlines in the body prefix plus the body-open line is exact.
    return fn.body_text[:rel].count("\n") + body_open_line(fn)


_body_open_lines: Dict[int, int] = {}


def body_open_line(fn: Function) -> int:
    key = id(fn)
    if key not in _body_open_lines:
        # Recover from the function's recorded file + body offset: the
        # number of newlines before the body in the stripped file equals
        # those in the raw file (stripping preserves newlines).
        raw = "\n".join(_raw_file_cache.get(fn.file, []))
        _body_open_lines[key] = raw.count("\n", 0, fn.body_file_offset) + 1
    return _body_open_lines[key]


_raw_file_cache: Dict[str, List[str]] = {}


def snapshot_pass(prog: Program, supp: SuppressionIndex) -> List[Finding]:
    global _raw_file_cache
    _raw_file_cache = prog.files
    classify_snapshot_params(prog)
    findings: List[Finding] = []
    for fn in sorted(prog.functions.values(), key=lambda f: f.qual):
        if not fn.body_text:
            continue
        body = fn.body_text
        roots = fn.handles
        # Derived locals: `x = handle->f(...)` / `x = *handle` where f
        # yields an interior pointer/reference.
        derived: Set[str] = set()
        for h in roots:
            for m in re.finditer(
                    rf"\b([A-Za-z_]\w*)\s*=\s*(?:\*\s*{h}\b|&\s*{h}\b|"
                    rf"{h}\s*(?:\.|->)\s*\w+\s*\()", body):
                if m.group(1) != h:
                    derived.add(m.group(1))
        tracked = roots | derived
        if tracked:
            # (a) Return of a handle-rooted pointer/reference.
            for h in sorted(tracked):
                for m in re.finditer(rf"return\s*&\s*{h}\b", body):
                    ln = line_of_body(fn, m.start())
                    if not supp.allowed(fn.file, ln, "snapshot-return"):
                        findings.append(Finding(
                            "snapshot-return", fn.file, ln,
                            f"address rooted at snapshot handle '{h}' "
                            f"returned from '{fn.qual}': the pointee is "
                            "reclaimed after the next publish; return a "
                            "copy or keep the shared_ptr handle alive",
                            (fn.qual,)))
                if fn.returns_ptr_or_ref:
                    for m in re.finditer(
                            rf"return\s+{h}\s*(?:\.|->)\s*(\w+)\s*\(", body):
                        if not callee_returns_ptr(prog, m.group(1)):
                            continue
                        ln = line_of_body(fn, m.start())
                        if not supp.allowed(fn.file, ln, "snapshot-return"):
                            findings.append(Finding(
                                "snapshot-return", fn.file, ln,
                                f"interior pointer of snapshot handle '{h}' "
                                f"returned from '{fn.qual}': it outlives "
                                "the handle's frame and dangles after the "
                                "next publish", (fn.qual,)))
                # (b) Member store of a handle-rooted pointer/reference.
                for m in re.finditer(
                        rf"(?:this\s*->\s*)?[A-Za-z_]\w*_\s*=\s*"
                        rf"(?:&\s*{h}\b|{h}\s*(?:\.|->)\s*(\w+)\s*\()", body):
                    if m.group(1) is not None and not callee_returns_ptr(
                            prog, m.group(1)):
                        continue
                    ln = line_of_body(fn, m.start())
                    if not supp.allowed(fn.file, ln, "snapshot-store"):
                        findings.append(Finding(
                            "snapshot-store", fn.file, ln,
                            f"reference into snapshot handle '{h}' stored "
                            f"into a member in '{fn.qual}': it outlives the "
                            "publish epoch; store the shared_ptr handle or "
                            "copy the value", (fn.qual,)))
        # (c) Cross-function: handle (or snapshot param) passed to a
        # callee that stores or leaks its snapshot parameter.
        arg_sources = tracked | fn.snap_params
        if not arg_sources:
            continue
        for site in fn.calls:
            target = resolve_call(prog, fn, site)
            if target is None or target.qual == fn.qual:
                continue
            if not (target.stores_param or target.returns_param_interior):
                continue
            hit = next((src for src in sorted(arg_sources)
                        if re.search(rf"\b{src}\b", site.args)), None)
            if hit is None:
                continue
            if target.stores_param:
                pname, sink_line = target.stores_param[0]
                if supp.allowed(target.file, sink_line, "snapshot-store") or \
                        supp.allowed(site.file, site.line, "snapshot-store"):
                    continue
                findings.append(Finding(
                    "snapshot-store", target.file, sink_line,
                    f"'{fn.qual}' passes snapshot-rooted '{hit}' to "
                    f"'{target.qual}', which stores its '{pname}' parameter "
                    "into a member: the stored reference outlives the "
                    "publish epoch", (fn.qual, target.qual)))
            elif target.returns_param_interior and fn.returns_ptr_or_ref:
                # Forwarding a callee's interior pointer out of this frame.
                pname, sink_line = target.returns_param_interior[0]
                for m in re.finditer(
                        rf"return\s+[\w:]*\s*{site.name}\s*\(",
                        fn.body_text):
                    ln = line_of_body(fn, m.start())
                    if supp.allowed(fn.file, ln, "snapshot-return"):
                        continue
                    findings.append(Finding(
                        "snapshot-return", fn.file, ln,
                        f"'{fn.qual}' returns '{target.qual}''s interior "
                        f"pointer into snapshot-rooted '{hit}': the "
                        "reference escapes the frame that pins the epoch",
                        (fn.qual, target.qual)))
    # Dedupe (cross-function findings can be discovered from N callers at
    # the same sink; keep one per (rule,file,line,witness)).
    seen: Set[Tuple] = set()
    out: List[Finding] = []
    for f in findings:
        key = (f.rule, f.file, f.line, f.witness)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out


def callee_returns_ptr(prog: Program, name: str) -> bool:
    candidates = prog.by_name.get(name, [])
    if candidates:
        return any(c.returns_ptr_or_ref for c in candidates)
    # Unknown callee (std:: or out of scope): assume value-returning,
    # except the conventional accessor spellings for interior state.
    return name in ("data", "get", "c_str", "paths_from", "operator->")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def iter_cxx_files(paths: Sequence[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        else:
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if d not in (".git", "build")
                                 and not d.startswith("build-"))
                for name in sorted(files):
                    if name.endswith(CXX_EXTENSIONS):
                        out.append(os.path.join(root, name))

    def normalize(p: str) -> str:
        rel = os.path.relpath(p)
        return rel if not rel.startswith("..") else os.path.abspath(p)

    return sorted(set(normalize(p) for p in out))


def build_program(files: Sequence[str], engine: str,
                  compile_commands: Optional[str]) -> Program:
    if engine == "clang":
        return build_program_libclang(files, compile_commands)
    return build_program_textual(files)


def analyze(prog: Program) -> Tuple[List[Finding], SuppressionIndex]:
    supp = SuppressionIndex(prog.files)
    findings = hot_reachability(prog, supp)
    findings.extend(snapshot_pass(prog, supp))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, supp


def write_report(path: str, prog: Program, findings: Sequence[Finding],
                 supp: SuppressionIndex, changed: Optional[Set[str]]) -> None:
    roots = sorted(f.qual for f in prog.functions.values() if f.hot)
    cold = sorted(f.qual for f in prog.functions.values() if f.cold)
    edges = sum(len(f.calls) for f in prog.functions.values())
    doc = {
        "engine": prog.engine,
        "files": len(prog.files),
        "functions": len(prog.functions),
        "call_sites": edges,
        "hot_roots": roots,
        "cold_barriers": cold,
        "changed_file_filter": sorted(changed) if changed else None,
        "findings": [
            {
                "rule": f.rule,
                "file": f.file,
                "line": f.line,
                "message": f.message,
                "witness": list(f.witness),
            } for f in findings
        ],
        "suppression_errors": supp.errors,
        "unused_suppressions": supp.unused(),
    }
    with open(path, "w", encoding="utf-8") as out:
        json.dump(doc, out, indent=2, sort_keys=True)
        out.write("\n")


def run_scan(args: argparse.Namespace, engine: str) -> int:
    files = iter_cxx_files(args.paths)
    if not files:
        print("contracts: no C++ files under given paths", file=sys.stderr)
        return 2
    try:
        prog = build_program(files, engine, args.compile_commands)
    except Exception as e:  # noqa: BLE001 — surfaced as a tool error
        print(f"contracts: {engine} engine failed: {e}", file=sys.stderr)
        return 2
    roots = [f for f in prog.functions.values() if f.hot]
    if not roots:
        print("contracts: no INTSCHED_HOTPATH roots found in the scanned "
              "set — the contract would be vacuously clean; annotate the "
              "entry points (core/contracts.hpp) or check the macro "
              "spelling", file=sys.stderr)
        return 2
    findings, supp = analyze(prog)

    changed: Optional[Set[str]] = None
    if args.changed_files:
        changed = {os.path.abspath(p) for p in args.changed_files}
        qual_files = {f.qual: f.file for f in prog.functions.values()}
        kept = []
        for f in findings:
            touches = {f.file} | {qual_files.get(q, "") for q in f.witness}
            if {os.path.abspath(t) for t in touches if t} & changed:
                kept.append(f)
        print(f"contracts: changed-file fast path: full graph "
              f"({len(prog.functions)} functions) built, reporting "
              f"{len(kept)}/{len(findings)} finding(s) touching "
              f"{len(changed)} changed file(s)", file=sys.stderr)
        findings = kept

    hygiene_errors = list(supp.errors)
    unused = supp.unused()
    for e in hygiene_errors:
        print(f"error: {e}", file=sys.stderr)
    for w in unused:
        if args.strict_suppressions:
            print(f"error: {w}", file=sys.stderr)
        else:
            print(f"warning: {w}", file=sys.stderr)
    for f in findings:
        print(f.render())
    if args.report:
        write_report(args.report, prog, findings, supp, changed)
    bad = len(findings) + len(hygiene_errors)
    if args.strict_suppressions:
        bad += len(unused)
    if bad:
        print(f"contracts: {len(findings)} finding(s), "
              f"{len(hygiene_errors)} hygiene error(s), "
              f"{len(unused)} unused suppression(s) across "
              f"{len(prog.files)} file(s) [{prog.engine} engine]",
              file=sys.stderr)
        return 1
    print(f"contracts: clean — {len(roots)} hot root(s), "
          f"{len(prog.functions)} function(s), {len(prog.files)} file(s) "
          f"[{prog.engine} engine]", file=sys.stderr)
    return 0


def run_self_test(corpus_dir: str, engine: str) -> int:
    """Each corpus case is a directory of C++ files forming one small
    whole program. bad_* cases must produce exactly their expect()
    annotations (line-level, rule-exact) and every expect-via() witness;
    clean_* cases must produce none. expect-error(substr) asserts a
    suppression-hygiene error."""
    cases = sorted(d for d in os.listdir(corpus_dir)
                   if os.path.isdir(os.path.join(corpus_dir, d)))
    if not cases:
        print(f"contracts: empty corpus at {corpus_dir}", file=sys.stderr)
        return 2
    failures = 0
    for case in cases:
        case_dir = os.path.join(corpus_dir, case)
        files = iter_cxx_files([case_dir])
        try:
            prog = build_program(files, engine, None)
        except Exception as e:  # noqa: BLE001
            print(f"SELFTEST ERROR: {case}: {engine} engine failed: {e}")
            failures += 1
            continue
        findings, supp = analyze(prog)
        expected: Set[Tuple[str, int, str]] = set()
        exp_via: List[str] = []
        exp_errors: List[str] = []
        for path in files:
            with open(path, encoding="utf-8") as f:
                for i, raw in enumerate(f.read().splitlines(), start=1):
                    for m in EXPECT_RE.finditer(raw):
                        expected.add((os.path.basename(path), i, m.group(1)))
                    for m in EXPECT_VIA_RE.finditer(raw):
                        exp_via.append(re.sub(r"\s+", "", m.group(1)))
                    for m in EXPECT_ERROR_RE.finditer(raw):
                        exp_errors.append(m.group(1))
        actual = {(os.path.basename(f.file), f.line, f.rule)
                  for f in findings}
        if case.startswith("clean_") and expected:
            print(f"SELFTEST BROKEN: {case} is clean_* but has expect()")
            failures += 1
            continue
        for miss in sorted(expected - actual):
            print(f"SELFTEST MISS: {case}/{miss[0]}:{miss[1]} expected "
                  f"[{miss[2]}] not reported")
            failures += 1
        for spur in sorted(actual - expected):
            print(f"SELFTEST SPURIOUS: {case}/{spur[0]}:{spur[1]} reported "
                  f"[{spur[2]}] not expected")
            failures += 1
        witnesses = {"->".join(f.witness) for f in findings}
        for via in exp_via:
            if via not in witnesses:
                print(f"SELFTEST MISS: {case} expected witness path "
                      f"'{via}'; got {sorted(witnesses) or 'none'}")
                failures += 1
        unmatched = list(supp.errors)
        for sub in exp_errors:
            hit = next((d for d in unmatched if sub in d), None)
            if hit is None:
                print(f"SELFTEST MISS: {case} expected a hygiene error "
                      f"containing '{sub}'")
                failures += 1
            else:
                unmatched.remove(hit)
        for d in unmatched:
            print(f"SELFTEST SPURIOUS: {case} hygiene error: {d}")
            failures += 1
    if failures:
        print(f"contracts self-test [{engine}]: FAIL "
              f"({failures} mismatch(es) over {len(cases)} case(s))")
        return 1
    print(f"contracts self-test [{engine}]: OK ({len(cases)} case(s))")
    return 0


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="contracts", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--engine", choices=("auto", "text", "clang"),
                        default="auto")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the clang engine "
                             "(default: build/compile_commands.json when "
                             "present)")
    parser.add_argument("--require-libclang", action="store_true",
                        help="exit 2 instead of degrading to the textual "
                             "engine when libclang is unavailable (CI)")
    parser.add_argument("--self-test", action="store_true",
                        help="run against the bundled whole-program corpus")
    parser.add_argument("--strict-suppressions", action="store_true",
                        help="treat unused suppressions as errors")
    parser.add_argument("--changed-files", nargs="*", default=None,
                        help="PR fast path: build the full graph but report "
                             "only findings whose witness touches these "
                             "files")
    parser.add_argument("--report", default=None,
                        help="write a JSON call-graph/violation report")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    have_clang = libclang_available()
    if args.require_libclang and not have_clang:
        print("contracts: --require-libclang set but libclang "
              "(python3-clang) is not importable", file=sys.stderr)
        return 2
    engine = args.engine
    if engine == "auto":
        engine = "clang" if have_clang else "text"
        if not have_clang:
            print("contracts: libclang not found; using the textual engine "
                  "(call edges are heuristic — install python3-clang for "
                  "type-accurate resolution)", file=sys.stderr)
    elif engine == "clang" and not have_clang:
        print("contracts: --engine clang but libclang is not importable",
              file=sys.stderr)
        return 2

    if args.compile_commands is None and os.path.isfile(
            "build/compile_commands.json"):
        args.compile_commands = "build/compile_commands.json"

    if args.self_test:
        corpus = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "contracts_corpus")
        rc = run_self_test(corpus, "text")
        if have_clang:
            rc = max(rc, run_self_test(corpus, "clang"))
        return rc

    if not args.paths:
        parser.error("paths required unless --self-test/--list-rules")
    return run_scan(args, engine)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
