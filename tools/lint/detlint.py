#!/usr/bin/env python3
"""intsched determinism linter.

Flags C++ constructs that can silently break the repo's byte-identical
same-seed reproducibility contract (see DESIGN.md "Static analysis &
invariants"):

  unordered-iter   range-for over a std::unordered_{map,set,...} variable.
                   Hash-map iteration order depends on libstdc++ version,
                   insertion history, and rehash points; any such loop that
                   feeds rankings, reports, or serialization is a
                   reproducibility bug.
  float-accum      floating-point `+=` accumulation inside an unordered
                   iteration: even with a deterministic final set, the
                   *order* of FP additions changes the rounded result.
  wall-clock       std::chrono::{system,steady,high_resolution}_clock::now,
                   time(nullptr), clock(), gettimeofday, localtime/gmtime.
                   Simulation code must use sim::SimTime exclusively.
  unseeded-rng     rand()/srand(), std::random_device, default-constructed
                   std::mt19937/std::default_random_engine. All randomness
                   must flow through named, seeded sim::Rng streams.
  pointer-key      std::map/std::set keyed (or ordered) by a raw pointer:
                   the order is the allocator's, not the program's.
  thread-share     threading primitives (std::thread/jthread/async, mutex,
                   condition_variable, atomic, future/promise, latch,
                   barrier, thread_local) outside the designated thread-pool
                   boundary. The simulator is single-threaded by contract;
                   cross-thread shared mutable state anywhere else is a
                   nondeterminism hazard. The sanctioned boundary
                   (exp::SweepRunner) carries a file-level suppression.
  mutex-no-guard   a mutex member (std::*mutex or core::AnnotatedMutex) in
                   a class that declares no GUARDED_BY-annotated field. A
                   lock that guards nothing *named* guards nothing at all:
                   the -Wthread-safety preset can only check the lock
                   discipline the annotations declare (thread_annot.hpp).
  raw-thread       direct std::thread/std::jthread use or a .detach() call
                   anywhere but sweep_runner.cpp. All parallelism flows
                   through exp::SweepRunner so pool policy (stop flag,
                   exception funnel, steal order) stays in one audited
                   place. std::thread::id / hardware_concurrency (member
                   access, no spawn) are deliberately not flagged.
  atomic-ordering  memory_order_relaxed outside a fetch_add/fetch_sub
                   counter bump. Relaxed accesses carry no happens-before
                   edge; outside plain counters they are almost always a
                   latent race or a stale-read bug. Use the seq_cst
                   default, acquire/release, or justify the counter read
                   with allow(atomic-ordering).
  snapshot-escape  a reference into an RCU-style snapshot outliving the
                   snapshot handle: taking `&snap...` in a return statement
                   or storing it into a member, or capturing a snapshot
                   local by reference in a lambda handed to the event
                   scheduler. Published snapshots are immutable but their
                   *handles* pin the memory; an escaped reference reads
                   freed or superseded state after the next publish.
  hotpath-alloc    heap allocation (new/make_unique/make_shared/malloc or
                   construction of an allocating std:: container) inside a
                   scheduler hot-path function (HOT_PATH_FUNCTIONS, plus
                   any function marked `// intsched-lint: hot-path` on the
                   line above). The lock-free read path budget is zero
                   allocations per decision (DESIGN.md §10); hoist the
                   buffer to the caller or a member scratch area.
  raw-unit         a raw arithmetic parameter/field whose name encodes a
                   unit or time-like quantity (`*_ns`, `*_ms`, `*delay*`,
                   `*latency*`, `*epoch*`, ...). Raw int64/double unit
                   values are exactly the bug class the strong-type layer
                   (sim::SimDuration/SimTime, core::Epoch) removes; declare
                   the typed quantity instead of the raw count.

Suppression: append `// intsched-lint: allow(<rule>[, <rule>...])` to the
offending line or the line directly above it. For a file that is *itself*
a sanctioned boundary (e.g. the thread-pool implementation), a single
`// intsched-lint: allow-file(<rule>[, <rule>...])` anywhere in the file
suppresses those rules for the whole file. Suppressions are deliberate
review-visible annotations — use them only when the iteration order (or
thread confinement) provably cannot reach any ordered output (and say why
in a comment).

Suppression hygiene is itself checked: an allow()/allow-file() naming a
rule this linter does not define is an error (exit 1 — typos silently
disable nothing), and a suppression that matches no finding is reported
as unused (an error under --strict-suppressions) so stale annotations
don't accumulate as the code they excused moves away.

Engines: `--engine clang` uses libclang (python3-clang) for type-accurate
unordered-iter detection; `--engine regex` is a dependency-free fallback;
`--engine auto` (default) picks clang when importable, regex otherwise.
The text rules (wall-clock, unseeded-rng, pointer-key) are regex in both
engines.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

RULES = (
    "unordered-iter",
    "float-accum",
    "wall-clock",
    "unseeded-rng",
    "pointer-key",
    "thread-share",
    "mutex-no-guard",
    "raw-thread",
    "atomic-ordering",
    "snapshot-escape",
    "hotpath-alloc",
    "raw-unit",
)

# The one file allowed to create threads (the pool implementation); the
# raw-thread rule is suppressed there by construction, not by annotation.
RAW_THREAD_BOUNDARY_BASENAMES = ("sweep_runner.cpp",)

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".ipp")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<")
# `using Name = std::unordered_map<...>` / `typedef ... Name;`
ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std::unordered_(?:multi)?(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:=|;|\{)")
ALLOW_RE = re.compile(r"//.*?\bintsched-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"//.*?\bintsched-lint:\s*allow-file\(([^)]*)\)")
EXPECT_RE = re.compile(r"//.*?\bexpect\((\w[\w-]*)\)")
EXPECT_ERROR_RE = re.compile(r"//.*?\bexpect-error\(([^)]+)\)")
EXPECT_WARNING_RE = re.compile(r"//.*?\bexpect-warning\(([^)]+)\)")

TEXT_RULES: Sequence[Tuple[str, re.Pattern, str]] = (
    ("wall-clock",
     re.compile(r"std::chrono::(?:system|steady|high_resolution)_clock"
                r"\s*::\s*now"),
     "wall-clock read; simulation code must use sim::SimTime"),
    ("wall-clock",
     re.compile(r"(?<![\w.>:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time() wall-clock read"),
    ("wall-clock",
     re.compile(r"(?<![\w.>:])(?:clock|clock_gettime|gettimeofday|"
                r"localtime|localtime_r|gmtime|gmtime_r)\s*\("),
     "C wall-clock API"),
    ("unseeded-rng",
     re.compile(r"(?<![\w.>:])s?rand\s*\("),
     "rand()/srand(); use a named sim::Rng stream"),
    ("unseeded-rng",
     re.compile(r"std::random_device"),
     "std::random_device is nondeterministic entropy"),
    ("unseeded-rng",
     re.compile(r"std::(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?)"
                r"\s+\w+\s*(?:;|\{\s*\})"),
     "default-constructed std engine; seed it from the experiment seed "
     "or use sim::Rng"),
    ("pointer-key",
     re.compile(r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?"
                r"[\w:]+(?:\s*<[^<>]*>)?\s*\*"),
     "ordered container keyed by raw pointer: ordering is the "
     "allocator's, not the program's"),
    ("pointer-key",
     re.compile(r"std::less\s*<\s*(?:const\s+)?[\w:]+\s*\*\s*>"),
     "std::less over raw pointers"),
    ("thread-share",
     re.compile(r"std::(?:jthread|thread|async|mutex|recursive_mutex|"
                r"shared_mutex|timed_mutex|condition_variable(?:_any)?|"
                r"atomic(?:_flag)?\b|atomic\s*<|future|shared_future|"
                r"promise|latch|barrier|stop_token|counting_semaphore|"
                r"binary_semaphore)\b"),
     "threading primitive outside the thread-pool boundary: the simulator "
     "is single-threaded by contract; confine cross-thread state to "
     "exp::SweepRunner or justify with allow-file(thread-share)"),
    ("thread-share",
     re.compile(r"\bthread_local\b"),
     "thread_local state: per-thread copies diverge across --jobs values"),
    ("thread-share",
     re.compile(r"(?<![\w.>:])pthread_\w+\s*\("),
     "raw pthread call outside the thread-pool boundary"),
    ("raw-thread",
     re.compile(r"\bstd::j?thread\b(?!\s*::)"),
     "direct thread creation outside the pool implementation: all "
     "parallelism goes through exp::SweepRunner (sweep_runner.cpp)"),
    ("raw-thread",
     re.compile(r"\.\s*detach\s*\(\s*\)"),
     "detached thread: orphaned concurrency can be neither joined nor "
     "reasoned about; run the work on exp::SweepRunner instead"),
)

# -- concurrency structure rules (context-sensitive, shared by both
#    engines: class-body attribution for mutex-no-guard, statement context
#    for atomic-ordering) ------------------------------------------------

MUTEX_MEMBER_RE = re.compile(
    r"\b(?:std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex|"
    r"AnnotatedMutex)\s+([A-Za-z_]\w*)\s*(?:;|\{|=)")
CLASS_OPEN_RE = re.compile(r"\b(?:class|struct)\b[^;{}]*?\{")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
COUNTER_OP_RE = re.compile(r"\bfetch_(?:add|sub)\s*\(")


def class_body_spans(stripped: str) -> List[Tuple[int, int]]:
    """(open-brace, end) offsets of every class/struct body."""
    spans: List[Tuple[int, int]] = []
    for m in CLASS_OPEN_RE.finditer(stripped):
        open_idx = stripped.index("{", m.start())
        depth = 0
        for i in range(open_idx, len(stripped)):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    spans.append((open_idx, i + 1))
                    break
        else:
            spans.append((open_idx, len(stripped)))
    return spans


def enclosing_class(spans: Sequence[Tuple[int, int]],
                    pos: int) -> Optional[Tuple[int, int]]:
    """Innermost class body containing `pos` (None for free/local scope)."""
    best: Optional[Tuple[int, int]] = None
    for open_idx, end in spans:
        if open_idx < pos < end and (best is None or open_idx > best[0]):
            best = (open_idx, end)
    return best


def concurrency_findings(path: str, stripped: str) -> List[Finding]:
    findings: List[Finding] = []

    # mutex-no-guard: every mutex *member* (declared at class-body depth,
    # not inside a method) must live next to at least one GUARDED_BY field.
    spans = class_body_spans(stripped)
    for m in MUTEX_MEMBER_RE.finditer(stripped):
        span = enclosing_class(spans, m.start())
        if span is None:
            continue  # function-local lock: scoping is its discipline
        open_idx, end = span
        depth = 1
        for i in range(open_idx + 1, m.start()):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
        if depth != 1:
            continue  # inside a member function body, not a member
        if "GUARDED_BY" in stripped[open_idx:end]:
            continue
        findings.append(Finding(
            path, line_of(stripped, m.start()), "mutex-no-guard",
            f"mutex member '{m.group(1)}' in a class with no "
            "GUARDED_BY-annotated field: declare what it protects "
            "(intsched/core/thread_annot.hpp) so -Wthread-safety can "
            "check the discipline, or justify with allow(mutex-no-guard)"))

    # atomic-ordering: relaxed is for counter bumps (fetch_add/fetch_sub
    # in the same statement); any other relaxed access needs a reason.
    for m in RELAXED_RE.finditer(stripped):
        stmt_start = max(stripped.rfind(c, 0, m.start())
                         for c in (";", "{", "}"))
        stmt = stripped[stmt_start + 1:m.end()]
        if COUNTER_OP_RE.search(stmt):
            continue
        findings.append(Finding(
            path, line_of(stripped, m.start()), "atomic-ordering",
            "memory_order_relaxed outside a fetch_add/fetch_sub counter "
            "bump: relaxed accesses publish nothing (no happens-before); "
            "use the seq_cst default or acquire/release, or justify a "
            "counter read with allow(atomic-ordering)"))

    return findings


# -- v2 rule families: snapshot-escape, hotpath-alloc, raw-unit ----------
#
# All three are structure-sensitive: they reason about declaration scopes,
# function bodies, and statement boundaries recovered from the stripped
# source (a lightweight syntax tree), not about single lines.

# Locals bound to an RCU-style snapshot handle: `auto snap = x.snapshot();`
# `const MetroView& v = map.metro_snapshot();` `... = service.acquire();`
SNAPSHOT_BIND_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*[\w.\->:]*\b(?:\w*snapshot\w*|acquire)\s*\(")
# Event-scheduler entry points whose callbacks outlive the caller's frame.
DEFERRED_CALL_RE = re.compile(
    r"\b(?:schedule_at|schedule_after|schedule_periodic|submit|post|defer)"
    r"\s*\(")

# The scheduler's lock-free decision path: zero allocations per call
# (DESIGN.md §10). Extend locally with `// intsched-lint: hot-path` on the
# line above a function definition.
HOT_PATH_FUNCTIONS = frozenset((
    "pick_server",
    "rank_servers",
    "best_region",
    "estimate_path_delay",
    "path_delay_estimate",
    "estimate_k_factor",
    "egress_service_delay",
    "try_transmit",
    "device_hop_latency",
    "link_delay",
))
HOT_PATH_MARK_RE = re.compile(r"//.*?\bintsched-lint:\s*hot-path\b")

HOT_ALLOC_RES: Sequence[Tuple[re.Pattern, str]] = (
    (re.compile(r"(?<![\w:])new\b(?!\s*\()"), "raw `new`"),
    (re.compile(r"\bstd::make_(?:unique|shared)\s*<"),
     "std::make_unique/make_shared"),
    (re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?(?:malloc|calloc|realloc)"
                r"\s*\("),
     "C heap allocation"),
    (re.compile(r"\bstd::(?:vector|deque|list|(?:unordered_)?(?:multi)?"
                r"(?:map|set)|basic_string)\s*<[^;{}()]*>\s+[A-Za-z_]\w*"
                r"\s*[;({=]"),
     "allocating container constructed locally"),
    (re.compile(r"\bstd::string\s+[A-Za-z_]\w*\s*[;({=]"),
     "std::string constructed locally"),
)

# Raw arithmetic declarations whose *name* encodes a unit or time-like
# quantity. Fractions/ratios/counters are legitimately raw; exclude them.
RAW_UNIT_RE = re.compile(
    r"\b(?:std::)?(?:u?int(?:8|16|32|64)_t|long\s+long|long|int|double|"
    r"float)\s+"
    r"([A-Za-z_]\w*(?:_ns|_us|_ms|_sec|_secs)|"
    r"[A-Za-z_]*(?:delay|latency|interval|window|timeout|staleness|rtt|"
    r"epoch)_?)\s*(?=[,)=;{\[])")
RAW_UNIT_EXEMPT_RE = re.compile(
    r"(?:_frac|_fraction|_ratio|_factor|_scale|_count|_chance|_pkts|"
    r"_bytes|_idx|_index)\w*$|(?:^|_)per_")


def function_body_spans(stripped: str,
                        hot_lines: Set[int]) -> List[Tuple[str, int, int]]:
    """(name, body_start, body_end) for every definition of a hot-path
    function: named in HOT_PATH_FUNCTIONS or marked hot on the previous
    line."""
    spans: List[Tuple[str, int, int]] = []
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", stripped):
        name = m.group(1)
        line = line_of(stripped, m.start())
        marked = (line - 1) in hot_lines or line in hot_lines
        if name not in HOT_PATH_FUNCTIONS and not marked:
            continue
        close = find_matching_paren(stripped, m.end() - 1)
        if close < 0:
            continue
        # Definition, not declaration/call: scan past qualifiers
        # (const/noexcept/override/trailing return/ctor-inits) to `{`;
        # a `;` or operator first means it wasn't a definition.
        i = close + 1
        n = len(stripped)
        body_open = -1
        while i < n:
            c = stripped[i]
            if c == "{":
                body_open = i
                break
            if c in ";=}" or (c == ")" or c == "("):
                break
            i += 1
        if body_open < 0:
            continue
        depth = 0
        for j in range(body_open, n):
            if stripped[j] == "{":
                depth += 1
            elif stripped[j] == "}":
                depth -= 1
                if depth == 0:
                    spans.append((name, body_open, j + 1))
                    break
        else:
            spans.append((name, body_open, n))
    return spans


def v2_findings(path: str, text: str, stripped: str) -> List[Finding]:
    findings: List[Finding] = []

    # --- snapshot-escape -------------------------------------------------
    snap_locals = {m.group(1) for m in SNAPSHOT_BIND_RE.finditer(stripped)}
    for name in sorted(snap_locals):
        # Escape 1: address-of the handle (or data reached through it)
        # returned or persisted into a member (trailing-underscore LHS).
        for m in re.finditer(
                rf"(?:\breturn\s+|[A-Za-z_]\w*_\s*=\s*)&\s*{name}\b",
                stripped):
            findings.append(Finding(
                path, line_of(stripped, m.start()), "snapshot-escape",
                f"address of snapshot handle '{name}' escapes its frame: "
                "the pointee is reclaimed after the next publish; copy the "
                "value or re-acquire the snapshot at use"))
        # Escape 2: reference-capturing lambda over the handle given to the
        # event scheduler — the callback runs after the frame is gone.
        for m in DEFERRED_CALL_RE.finditer(stripped):
            open_paren = stripped.index("(", m.start())
            close = find_matching_paren(stripped, open_paren)
            if close < 0:
                continue
            args = stripped[open_paren:close]
            if re.search(r"\[\s*&", args) and re.search(
                    rf"\b{name}\b", args):
                findings.append(Finding(
                    path, line_of(stripped, m.start()), "snapshot-escape",
                    f"snapshot handle '{name}' captured by reference in a "
                    "deferred callback: the callback outlives the frame "
                    "holding the snapshot; capture by value (the handle is "
                    "a cheap shared_ptr) or re-acquire inside the callback"))

    # --- hotpath-alloc ---------------------------------------------------
    hot_lines: Set[int] = set()
    for i, raw in enumerate(text.splitlines(), start=1):
        if HOT_PATH_MARK_RE.search(raw):
            hot_lines.add(i + 1)  # marks the function on the next line
    for name, start, end in function_body_spans(stripped, hot_lines):
        body = stripped[start:end]
        for pattern, what in HOT_ALLOC_RES:
            for m in pattern.finditer(body):
                findings.append(Finding(
                    path, line_of(stripped, start + m.start()),
                    "hotpath-alloc",
                    f"{what} in hot-path function '{name}': the decision "
                    "path budget is zero allocations per call (DESIGN.md "
                    "§10); hoist the buffer to the caller or a member "
                    "scratch area, or justify with allow(hotpath-alloc)"))

    # --- raw-unit --------------------------------------------------------
    for m in RAW_UNIT_RE.finditer(stripped):
        name = m.group(1)
        if RAW_UNIT_EXEMPT_RE.search(name):
            continue
        findings.append(Finding(
            path, line_of(stripped, m.start()), "raw-unit",
            f"raw arithmetic declaration '{name}' encodes a unit in its "
            "name: use the strong type (sim::SimDuration/SimTime for time "
            "spans/instants, core::Epoch for snapshot freshness) so unit "
            "mixups fail to compile"))

    return findings


@dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets
    (every replaced character becomes a space, newlines survive)."""
    out = list(text)
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j < n - 1 and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n - 1:
                out[j] = out[j + 1] = " "
                j += 2
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i, min(j + 1, n)):
                if text[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_angle_brackets(text: str, open_idx: int) -> int:
    """Given index of '<', returns index just past its matching '>'.
    Returns -1 when unbalanced (macro soup etc.)."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1  # gave up: not a template argument list
        i += 1
    return -1


IDENT_AFTER_TYPE_RE = re.compile(r"\s*[&*]*\s*([A-Za-z_]\w*)")


def collect_unordered_names(stripped: str) -> Set[str]:
    """Names of variables/members/functions declared with an unordered
    container type (or an alias of one) in this translation unit."""
    names: Set[str] = set()
    aliases: Set[str] = set()
    for m in ALIAS_RE.finditer(stripped):
        aliases.add(m.group(1))

    def harvest(type_end: int) -> None:
        m = IDENT_AFTER_TYPE_RE.match(stripped, type_end)
        if m:
            names.add(m.group(1))

    for m in UNORDERED_DECL_RE.finditer(stripped):
        open_idx = stripped.index("<", m.start())
        end = match_angle_brackets(stripped, open_idx)
        if end > 0:
            harvest(end)
    for alias in aliases:
        for m in re.finditer(rf"\b{alias}\s+", stripped):
            # skip the alias definition itself
            if stripped[max(0, m.start() - 8):m.start()].rstrip().endswith(
                    "using"):
                continue
            harvest(m.end() - 1)
    return names


LAST_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*$")


def range_expr_target(expr: str) -> Optional[str]:
    """Final identifier of a range expression: `map_->link_delay_` ->
    `link_delay_`, `obj.plan()` -> `plan`, `(*p).items` -> `items`."""
    m = LAST_IDENT_RE.search(expr.strip())
    return m.group(1) if m else None


def find_matching_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def loop_body_span(stripped: str, after_paren: int) -> Tuple[int, int]:
    """(start, end) offsets of the loop body following `for (...)`."""
    i = after_paren
    n = len(stripped)
    while i < n and stripped[i].isspace():
        i += 1
    if i < n and stripped[i] == "{":
        depth = 0
        for j in range(i, n):
            if stripped[j] == "{":
                depth += 1
            elif stripped[j] == "}":
                depth -= 1
                if depth == 0:
                    return (i, j + 1)
        return (i, n)
    # single-statement body
    j = stripped.find(";", i)
    return (i, j + 1 if j >= 0 else n)


def regex_file_findings(path: str, text: str,
                        pool: Optional[Set[str]] = None) -> List[Finding]:
    """`pool` is the cross-file set of names declared with unordered types
    (members live in headers but are iterated in .cpp files); when None the
    file is treated as self-contained (corpus mode)."""
    stripped = strip_comments_and_strings(text)
    findings: List[Finding] = []

    for rule, pattern, msg in TEXT_RULES:
        for m in pattern.finditer(stripped):
            findings.append(Finding(path, line_of(stripped, m.start()),
                                    rule, msg))
    findings.extend(concurrency_findings(path, stripped))
    findings.extend(v2_findings(path, text, stripped))

    unordered = collect_unordered_names(stripped)
    if pool is not None:
        unordered = unordered | pool
    float_vars = set(FLOAT_DECL_RE.findall(stripped))
    for m in RANGE_FOR_RE.finditer(stripped):
        open_paren = stripped.index("(", m.start())
        close = find_matching_paren(stripped, open_paren)
        if close < 0:
            continue
        header = stripped[open_paren + 1:close]
        if ":" not in header:
            continue  # classic for(;;)
        # split on the first ':' not part of '::'
        split = -1
        k = 0
        while k < len(header):
            if header[k] == ":":
                if k + 1 < len(header) and header[k + 1] == ":":
                    k += 2
                    continue
                split = k
                break
            k += 1
        if split < 0:
            continue
        target = range_expr_target(header[split + 1:])
        if target is None or target not in unordered:
            continue
        ln = line_of(stripped, m.start())
        findings.append(Finding(
            path, ln, "unordered-iter",
            f"range-for over unordered container '{target}': iteration "
            "order is hash/rehash dependent; sort on output or justify "
            "with an allow() annotation"))
        body_start, body_end = loop_body_span(stripped, close + 1)
        body = stripped[body_start:body_end]
        for am in re.finditer(r"([A-Za-z_]\w*)\s*\+=", body):
            if am.group(1) in float_vars:
                findings.append(Finding(
                    path, line_of(stripped, body_start + am.start()),
                    "float-accum",
                    f"floating-point accumulation into '{am.group(1)}' in "
                    "hash-ordered loop: FP addition is not associative, the "
                    "sum depends on iteration order"))
    return findings


# ---------------------------------------------------------------------------
# Optional libclang engine (type-accurate unordered-iter); falls back to the
# regex engine per file on any failure so results never silently shrink.
# ---------------------------------------------------------------------------

def libclang_available() -> bool:
    try:
        from clang import cindex  # type: ignore  # noqa: F401
    except ImportError:
        return False
    return True


_warned_no_libclang = False


def warn_no_libclang_once() -> None:
    global _warned_no_libclang
    if not _warned_no_libclang:
        print("detlint: libclang (python3-clang) not found; using the "
              "regex engine (type-accurate unordered-iter checks degraded)",
              file=sys.stderr)
        _warned_no_libclang = True


def clang_file_findings(path: str, text: str) -> Optional[List[Finding]]:
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=["-std=c++20", "-fsyntax-only"])
    except Exception:
        return None

    findings: List[Finding] = []
    stripped = strip_comments_and_strings(text)
    for rule, pattern, msg in TEXT_RULES:
        for m in pattern.finditer(stripped):
            findings.append(Finding(path, line_of(stripped, m.start()),
                                    rule, msg))
    findings.extend(concurrency_findings(path, stripped))
    findings.extend(v2_findings(path, text, stripped))

    def walk(cursor) -> None:
        for child in cursor.get_children():
            if child.location.file and child.location.file.name != path:
                continue
            if child.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                kids = list(child.get_children())
                if kids:
                    range_type = kids[-2].type.spelling if len(kids) >= 2 \
                        else ""
                    if "unordered_" in range_type:
                        findings.append(Finding(
                            path, child.location.line, "unordered-iter",
                            f"range-for over '{range_type}': iteration "
                            "order is hash/rehash dependent"))
            walk(child)

    try:
        walk(tu.cursor)
    except Exception:
        return None
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def suppressed_rules(lines: Sequence[str], line_no: int) -> Set[str]:
    """Rules allowed at 1-based line `line_no` (same line or the one above)."""
    rules: Set[str] = set()
    for ln in (line_no, line_no - 1):
        if 1 <= ln <= len(lines):
            m = ALLOW_RE.search(lines[ln - 1])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_file(path: str, engine: str,
              pool: Optional[Set[str]] = None
              ) -> Tuple[List[Finding], List[str], List[str]]:
    """Returns (active findings, hygiene errors, hygiene warnings).

    Hygiene errors are suppression annotations naming rules this linter
    does not define: a typo there silently disables nothing, so it fails
    the run (exit 1) even when the code itself is clean. Hygiene warnings
    are unused suppressions — annotations that matched no finding."""
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    lines = text.splitlines()

    findings: Optional[List[Finding]] = None
    if engine in ("auto", "clang"):
        findings = clang_file_findings(path, text)
        if findings is None and engine == "clang":
            print(f"detlint: libclang unavailable, regex fallback for {path}",
                  file=sys.stderr)
    if findings is None:
        findings = regex_file_findings(path, text, pool)

    raw_pairs = {(f.line, f.rule) for f in findings}
    rules_hit = {f.rule for f in findings}

    errors: List[str] = []
    warnings: List[str] = []
    file_allowed: Set[str] = set()
    for i, raw in enumerate(lines, start=1):
        m = ALLOW_RE.search(raw)
        if m:
            for r in (s.strip() for s in m.group(1).split(",")):
                if r not in RULES:
                    errors.append(
                        f"{path}:{i}: unknown rule '{r}' in allow() — "
                        "this suppresses nothing (typo?); known rules: "
                        "--list-rules")
                elif (i, r) not in raw_pairs and (i + 1, r) not in raw_pairs:
                    warnings.append(
                        f"{path}:{i}: unused suppression allow({r}): no "
                        f"[{r}] finding on this line or the next — the "
                        "code it excused has moved; delete the annotation")
        m = ALLOW_FILE_RE.search(raw)
        if m:
            for r in (s.strip() for s in m.group(1).split(",")):
                if r in RULES:
                    file_allowed.add(r)
                    if r not in rules_hit:
                        warnings.append(
                            f"{path}:{i}: unused suppression "
                            f"allow-file({r}): no [{r}] finding anywhere "
                            "in this file; delete the annotation")
                else:
                    errors.append(
                        f"{path}:{i}: unknown rule '{r}' in allow-file() — "
                        "this suppresses nothing (typo?); known rules: "
                        "--list-rules")

    if os.path.basename(path) in RAW_THREAD_BOUNDARY_BASENAMES:
        file_allowed.add("raw-thread")

    active = [f for f in findings
              if f.rule not in file_allowed
              and f.rule not in suppressed_rules(lines, f.line)]
    # stable report order regardless of rule-pass order
    active.sort(key=lambda f: (f.path, f.line, f.rule))
    return active, errors, warnings


def iter_cxx_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        else:
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if d not in (".git", "build")
                                 and not d.startswith("build-"))
                for name in sorted(files):
                    if name.endswith(CXX_EXTENSIONS):
                        out.append(os.path.join(root, name))
    return sorted(set(out))


def collect_pool(files: Sequence[str]) -> Set[str]:
    """Pass 1: every unordered-declared name across the whole scanned set,
    so a member declared in a header is recognised when a .cpp iterates it."""
    pool: Set[str] = set()
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            pool |= collect_unordered_names(
                strip_comments_and_strings(f.read()))
    return pool


def run_lint(paths: Sequence[str], engine: str,
             strict_suppressions: bool = False) -> int:
    files = iter_cxx_files(paths)
    if not files:
        print("detlint: no C++ files under given paths", file=sys.stderr)
        return 2
    pool = collect_pool(files)
    total = 0
    hygiene_errors = 0
    for path in files:
        findings, errors, warnings = lint_file(path, engine, pool)
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        hygiene_errors += len(errors)
        for w in warnings:
            if strict_suppressions:
                print(f"error: {w}", file=sys.stderr)
                hygiene_errors += 1
            else:
                print(f"warning: {w}", file=sys.stderr)
        for f in findings:
            print(f.render())
        total += len(findings)
    if total or hygiene_errors:
        print(f"detlint: {total} finding(s), {hygiene_errors} suppression "
              f"hygiene error(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    return 0


def run_self_test(corpus_dir: str, engine: str) -> int:
    """bad_*.cpp must produce exactly their expect() annotations; clean_*.cpp
    must produce none. `expect-error(substr)` / `expect-warning(substr)`
    annotations assert suppression-hygiene diagnostics the same way. The
    corpus is the linter's regression suite."""
    files = iter_cxx_files([corpus_dir])
    if not files:
        print(f"detlint: empty corpus at {corpus_dir}", file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        expected: Set[Tuple[int, str]] = set()
        exp_errors: List[str] = []
        exp_warnings: List[str] = []
        for i, raw in enumerate(lines, start=1):
            for m in EXPECT_RE.finditer(raw):
                expected.add((i, m.group(1)))
            for m in EXPECT_ERROR_RE.finditer(raw):
                exp_errors.append(m.group(1))
            for m in EXPECT_WARNING_RE.finditer(raw):
                exp_warnings.append(m.group(1))
        findings, errors, warnings = lint_file(path, engine)
        actual = {(f.line, f.rule) for f in findings}
        base = os.path.basename(path)
        if base.startswith("clean_") and expected:
            print(f"SELFTEST BROKEN: {base} is clean_* but has expect()")
            failures += 1
            continue
        missed = expected - actual
        spurious = actual - expected
        for line, rule in sorted(missed):
            print(f"SELFTEST MISS: {base}:{line} expected [{rule}] "
                  "not reported")
            failures += 1
        for line, rule in sorted(spurious):
            print(f"SELFTEST SPURIOUS: {base}:{line} reported [{rule}] "
                  "not expected")
            failures += 1
        # Hygiene diagnostics: every expect-error/expect-warning substring
        # must match one diagnostic, and no diagnostic may go unexpected.
        for label, got, want in (("error", errors, exp_errors),
                                 ("warning", warnings, exp_warnings)):
            unmatched = list(got)
            for sub in want:
                hit = next((d for d in unmatched if sub in d), None)
                if hit is None:
                    print(f"SELFTEST MISS: {base} expected a hygiene "
                          f"{label} containing '{sub}'")
                    failures += 1
                else:
                    unmatched.remove(hit)
            for d in unmatched:
                print(f"SELFTEST SPURIOUS: {base} hygiene {label}: {d}")
                failures += 1
    if failures:
        print(f"detlint self-test: FAIL ({failures} mismatch(es))")
        return 1
    print(f"detlint self-test: OK ({len(files)} corpus file(s))")
    return 0


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--engine", choices=("auto", "regex", "clang"),
                        default="auto")
    parser.add_argument("--require-libclang", action="store_true",
                        help="exit 2 instead of degrading to the regex "
                             "engine when libclang is unavailable (CI)")
    parser.add_argument("--self-test", action="store_true",
                        help="run against the bundled corpus")
    parser.add_argument("--strict-suppressions", action="store_true",
                        help="treat unused suppressions as errors "
                             "(full-tree CI runs)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0
    if not libclang_available():
        if args.require_libclang:
            print("detlint: --require-libclang set but libclang "
                  "(python3-clang) is not importable", file=sys.stderr)
            return 2
        if args.engine == "auto":
            warn_no_libclang_once()
    if args.self_test:
        corpus = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "corpus")
        return run_self_test(corpus, args.engine)
    if not args.paths:
        parser.error("paths required unless --self-test/--list-rules")
    return run_lint(args.paths, args.engine,
                    strict_suppressions=args.strict_suppressions)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
