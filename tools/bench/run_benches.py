#!/usr/bin/env python3
"""Bench harness: runs the micro benchmarks and a scaled figure suite,
emits machine-readable JSON, and gates regressions against the committed
baseline.

Outputs (written to --out-dir, committed at tools/bench/):

  BENCH_micro.json   merged google-benchmark JSON from bench/micro_core
                     (per-op ns for the event queue, window-max queries,
                     ranking, Dijkstra, switch pipeline, TCP) and
                     bench/micro_concurrent (multi-threaded rank QPS in
                     both concurrency modes, snapshot publish/batch
                     cost); the "benchmarks" arrays are concatenated so
                     one baseline gates every micro binary.
  BENCH_suite.json   wall-clock seconds of the scaled Fig.-5 suite at
                     --jobs=1 and --jobs=N, plus a byte-identity check of
                     the two reports (the parallel engine's contract).
  BENCH_metro.json   bench/metro_sweep JSON at the smoke scale: flat and
                     two-level (sharded) arm wall clock, rank-latency
                     percentiles, decision fingerprints, and the
                     flat/sharded agreement fraction.
  BENCH_qps.json     bench/qps_serve JSON at the smoke scale: the
                     closed-loop decision-rate ceiling (aggregate QPS +
                     service-time percentiles) and one open-loop trial at
                     a fixed offered load (achieved QPS, p50/p99/p999
                     from scheduled arrivals, error count).

Modes:

  run (default)      run everything, rewrite the JSON artifacts.
  --check            run micro_core fresh and compare against the
                     committed BENCH_micro.json; exit 1 when any shared
                     benchmark regressed more than --threshold (default
                     25%) in ns/op. New benchmarks (absent from the
                     baseline) are reported but never fail the check.
                     Unless --skip-suite, also re-run the scaled suite
                     and compare total wall clock against the committed
                     BENCH_suite.json (same threshold; jobs/reps taken
                     from the baseline) — a slower-than-threshold suite
                     or a byte-identity break fails the check. Unless
                     --skip-metro, also re-run bench/metro_sweep at the
                     committed BENCH_metro.json's shape and gate total
                     wall clock, cross-arm fingerprint equality, 100%
                     flat/sharded agreement, and fingerprint determinism
                     against the baseline (fingerprints are seeded and
                     hardware-independent, so they must match exactly).
                     Unless --skip-qps, also re-run bench/qps_serve at
                     the committed BENCH_qps.json's shape and gate the
                     serving path: the fixed-load trial must stay
                     error-free and sustain the baseline's offered load
                     (within --threshold), the decision-rate ceiling may
                     not collapse (2x threshold: the ceiling is the
                     noisiest cross-machine number), and the closed-loop
                     p99 may not blow up past 4x the baseline.
  --self-test        exercise the comparison logic on synthetic data
                     (clean, regressed, and identity-broken cases) with
                     no build directory needed; used by the ctest `lint`
                     label so the gate's non-zero exit path stays tested.

Wall-clock numbers are hardware-dependent: regenerate the baseline on the
machine that will check against it (CI regenerates its own in the smoke
job's first step when the artifact is missing).

Exit status: 0 ok, 1 regression/identity failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple


# Every micro binary feeding the shared BENCH_micro.json baseline; the
# regression gate in --check covers all of them through one artifact.
MICRO_BINARIES = ("micro_core", "micro_concurrent")


def run_micro(build_dir: str, out_path: str) -> Dict:
    """Runs each micro binary and merges their google-benchmark JSON into
    one artifact (context from the first, "benchmarks" concatenated)."""
    merged: Optional[Dict] = None
    for name in MICRO_BINARIES:
        exe = os.path.join(build_dir, "bench", name)
        if not os.path.exists(exe):
            print(f"run_benches: missing {exe} (build the {name} target)",
                  file=sys.stderr)
            sys.exit(2)
        part = f"{out_path}.{name}.part"
        cmd = [exe, "--benchmark_format=json", f"--benchmark_out={part}"]
        print(f"run_benches: {' '.join(cmd)}")
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(part, encoding="utf-8") as f:
            data = json.load(f)
        os.remove(part)
        if merged is None:
            merged = data
        else:
            merged["benchmarks"].extend(data["benchmarks"])
    assert merged is not None
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    return merged


def run_suite(build_dir: str, jobs: int, reps: int) -> Dict:
    """Scaled Fig.-5 run at --jobs=1 and --jobs=N: wall clock + output."""
    exe = os.path.join(build_dir, "bench", "fig5_serverless_delay")
    if not os.path.exists(exe):
        print(f"run_benches: missing {exe} (build the bench targets)",
              file=sys.stderr)
        sys.exit(2)
    result: Dict = {"bench": "fig5_serverless_delay", "reps": reps,
                    "runs": []}
    outputs: List[bytes] = []
    for j in (1, jobs):
        cmd = [exe, f"--reps={reps}", f"--jobs={j}"]
        print(f"run_benches: {' '.join(cmd)}")
        start = time.monotonic()
        proc = subprocess.run(cmd, check=True, capture_output=True)
        elapsed = time.monotonic() - start
        outputs.append(proc.stdout)
        result["runs"].append({"jobs": j,
                               "wall_seconds": round(elapsed, 3)})
    result["byte_identical"] = outputs[0] == outputs[-1]
    if len(result["runs"]) == 2 and result["runs"][1]["wall_seconds"] > 0:
        result["speedup"] = round(result["runs"][0]["wall_seconds"] /
                                  result["runs"][1]["wall_seconds"], 2)
    return result


def run_metro(build_dir: str, pods: int, tasks: int, epochs: int,
              seed: int, jobs: int) -> Dict:
    """Runs bench/metro_sweep at the given shape and returns its JSON
    report (flat vs two-level arms, fingerprints, agreement)."""
    exe = os.path.join(build_dir, "bench", "metro_sweep")
    if not os.path.exists(exe):
        print(f"run_benches: missing {exe} (build the metro_sweep target)",
              file=sys.stderr)
        sys.exit(2)
    out = "/tmp/BENCH_metro_fresh.json"
    cmd = [exe, f"--pods={pods}", f"--tasks={tasks}", f"--epochs={epochs}",
           f"--seed={seed}", f"--jobs={jobs}", f"--json={out}"]
    print(f"run_benches: {' '.join(cmd)}")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out, encoding="utf-8") as f:
        data = json.load(f)
    os.remove(out)
    return data


def compare_metro(baseline: Dict, fresh: Dict,
                  threshold: float) -> Tuple[List[str], int]:
    """Pure comparison (no I/O) for the metro sweep: total two-arm wall
    clock vs. baseline, the flat==sharded fingerprint contract, 100%
    agreement, and seeded-fingerprint determinism vs. the committed
    baseline. Returns (report lines, failure count)."""
    lines: List[str] = []
    failures = 0
    old = sum(a["wall_seconds"] for a in baseline["arms"])
    new = sum(a["wall_seconds"] for a in fresh["arms"])
    delta = (new - old) / old * 100.0 if old > 0 else 0.0
    verdict = "OK"
    if old > 0 and new > old * (1.0 + threshold):
        verdict = "REGRESSION"
        failures += 1
    lines.append(f"  {verdict:<9} metro total: {old:.3f}s -> {new:.3f}s "
                 f"({delta:+.1f}%)")
    prints = {a["arm"]: a["fingerprint"] for a in fresh["arms"]}
    if len(set(prints.values())) != 1:
        lines.append(f"  IDENTITY  two-level decisions diverged from flat: "
                     f"{prints}")
        failures += 1
    if fresh.get("agreement", 0.0) < 1.0:
        lines.append(f"  AGREEMENT flat/sharded agreement "
                     f"{fresh.get('agreement', 0.0):.4f} < 1.0")
        failures += 1
    base_prints = {a["arm"]: a["fingerprint"] for a in baseline["arms"]}
    for arm, fp in base_prints.items():
        if arm in prints and prints[arm] != fp:
            lines.append(f"  DETERMINISM {arm} fingerprint drifted from "
                         f"baseline: {fp} -> {prints[arm]}")
            failures += 1
    return lines, failures


def check_metro(build_dir: str, baseline_path: str, threshold: float,
                jobs: int) -> int:
    """Re-run the metro sweep at the baseline's shape/seed and gate wall
    clock, fingerprints, and agreement against the committed numbers."""
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    fresh = run_metro(build_dir, baseline["pods"], baseline["tasks"],
                      baseline["epochs"], baseline["seed"], jobs)
    lines, failures = compare_metro(baseline, fresh, threshold)
    for line in lines:
        print(line)
    if failures:
        print(f"run_benches: metro check failed ({failures} failure(s), "
              f"threshold {threshold * 100:.0f}%)", file=sys.stderr)
        return 1
    print("run_benches: metro within threshold, fingerprints exact")
    return 0


def run_qps(build_dir: str, pods: int, threads: int, seconds: float,
            offered: float, seed: int) -> Dict:
    """Runs bench/qps_serve at the given shape and returns its JSON
    report (closed-loop ceiling + fixed open-loop trial)."""
    exe = os.path.join(build_dir, "bench", "qps_serve")
    if not os.path.exists(exe):
        print(f"run_benches: missing {exe} (build the qps_serve target)",
              file=sys.stderr)
        sys.exit(2)
    out = "/tmp/BENCH_qps_fresh.json"
    cmd = [exe, f"--pods={pods}", f"--threads={threads}",
           f"--seconds={seconds}", f"--offered={offered}", f"--seed={seed}",
           f"--json={out}"]
    print(f"run_benches: {' '.join(cmd)}")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out, encoding="utf-8") as f:
        data = json.load(f)
    os.remove(out)
    return data


def compare_qps(baseline: Dict, fresh: Dict,
                threshold: float) -> Tuple[List[str], int]:
    """Pure comparison (no I/O) for the serving path. The open-loop p99
    is dominated by host scheduling jitter on shared runners, so the
    latency gate uses the closed-loop (service-time) histogram; the
    throughput gate uses the offered load — a config constant — rather
    than a machine-measured number. Returns (report lines, failures)."""
    lines: List[str] = []
    failures = 0
    fixed = fresh.get("fixed", {})
    if fixed.get("errors", 0) > 0:
        lines.append(f"  ERRORS    fixed trial returned "
                     f"{fixed['errors']} serve/decode error(s)")
        failures += 1
    offered = fixed.get("offered_qps", 0.0)
    achieved = fixed.get("achieved_qps", 0.0)
    verdict = "OK"
    if offered > 0 and achieved < offered * (1.0 - threshold):
        verdict = "THROUGHPUT"
        failures += 1
    lines.append(f"  {verdict:<9} fixed load: {achieved:.0f} / "
                 f"{offered:.0f} qps offered")
    old_ceiling = baseline.get("ceiling_qps", 0.0)
    new_ceiling = fresh.get("ceiling_qps", 0.0)
    delta = ((new_ceiling - old_ceiling) / old_ceiling * 100.0
             if old_ceiling > 0 else 0.0)
    verdict = "OK"
    if old_ceiling > 0 and new_ceiling < old_ceiling * (1.0 - 2 * threshold):
        verdict = "CEILING"
        failures += 1
    lines.append(f"  {verdict:<9} decision-rate ceiling: {old_ceiling:.0f} "
                 f"-> {new_ceiling:.0f} qps ({delta:+.1f}%)")
    old_p99 = baseline.get("ceiling", {}).get("p99_ns", 0.0)
    new_p99 = fresh.get("ceiling", {}).get("p99_ns", 0.0)
    verdict = "OK"
    if old_p99 > 0 and new_p99 > 4.0 * old_p99:
        verdict = "LATENCY"
        failures += 1
    lines.append(f"  {verdict:<9} closed-loop p99: {old_p99:.0f} -> "
                 f"{new_p99:.0f} ns")
    return lines, failures


def check_qps(build_dir: str, baseline_path: str, threshold: float) -> int:
    """Re-run qps_serve at the baseline's shape/seed and gate throughput,
    ceiling, and service-time p99 against the committed numbers."""
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    fresh = run_qps(build_dir, baseline["pods"], baseline["threads"],
                    baseline["seconds"],
                    baseline["fixed"]["offered_qps"], baseline["seed"])
    lines, failures = compare_qps(baseline, fresh, threshold)
    for line in lines:
        print(line)
    if failures:
        print(f"run_benches: qps check failed ({failures} failure(s), "
              f"threshold {threshold * 100:.0f}%)", file=sys.stderr)
        return 1
    print("run_benches: serving path within threshold")
    return 0


def compare_micro(baseline: Dict, fresh: Dict,
                  threshold: float) -> Tuple[List[str], int]:
    """Pure comparison (no I/O): per-benchmark ns/op vs. baseline.
    Returns (report lines, regression count)."""
    base = {b["name"]: b for b in baseline["benchmarks"]}
    lines: List[str] = []
    regressions = 0
    for bench in fresh["benchmarks"]:
        name = bench["name"]
        if name not in base:
            lines.append(f"  NEW       {name}: {bench['real_time']:.1f} "
                         f"{bench['time_unit']} (no baseline)")
            continue
        old = base[name]["real_time"]
        new = bench["real_time"]
        delta = (new - old) / old * 100.0
        verdict = "OK"
        if new > old * (1.0 + threshold):
            verdict = "REGRESSION"
            regressions += 1
        lines.append(f"  {verdict:<9} {name}: {old:.1f} -> {new:.1f} "
                     f"{bench['time_unit']} ({delta:+.1f}%)")
    return lines, regressions


def compare_suite(baseline: Dict, fresh: Dict,
                  threshold: float) -> Tuple[List[str], int]:
    """Pure comparison (no I/O): total suite wall clock vs. baseline plus
    the serial/parallel byte-identity contract. Returns (lines, failures)."""
    lines: List[str] = []
    failures = 0
    old = sum(r["wall_seconds"] for r in baseline["runs"])
    new = sum(r["wall_seconds"] for r in fresh["runs"])
    delta = (new - old) / old * 100.0 if old > 0 else 0.0
    verdict = "OK"
    if old > 0 and new > old * (1.0 + threshold):
        verdict = "REGRESSION"
        failures += 1
    lines.append(f"  {verdict:<9} suite total: {old:.3f}s -> {new:.3f}s "
                 f"({delta:+.1f}%)")
    if not fresh.get("byte_identical", False):
        lines.append("  IDENTITY  parallel output diverged from serial")
        failures += 1
    return lines, failures


def check_micro(build_dir: str, baseline_path: str,
                threshold: float) -> int:
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    fresh = run_micro(build_dir, "/tmp/BENCH_micro_check.json")
    lines, regressions = compare_micro(baseline, fresh, threshold)
    for line in lines:
        print(line)
    if regressions:
        print(f"run_benches: {regressions} benchmark(s) regressed more "
              f"than {threshold * 100:.0f}%", file=sys.stderr)
        return 1
    print("run_benches: no micro regressions beyond threshold")
    return 0


def check_suite(build_dir: str, baseline_path: str,
                threshold: float) -> int:
    """Re-run the scaled suite at the baseline's jobs/reps and gate the
    total wall clock (and byte identity) against the committed numbers."""
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    jobs = max(r["jobs"] for r in baseline["runs"])
    reps = baseline.get("reps", 2)
    fresh = run_suite(build_dir, jobs, reps)
    lines, failures = compare_suite(baseline, fresh, threshold)
    for line in lines:
        print(line)
    if failures:
        print(f"run_benches: suite check failed ({failures} failure(s), "
              f"threshold {threshold * 100:.0f}%)", file=sys.stderr)
        return 1
    print("run_benches: suite within threshold, byte-identical")
    return 0


def run_self_test() -> int:
    """Synthetic-data regression suite for the comparison logic: the gates
    must fail on regressions/identity breaks and pass on clean runs."""
    micro_base = {"benchmarks": [
        {"name": "BM_EventQueue", "real_time": 100.0, "time_unit": "ns"},
        {"name": "BM_Ranking", "real_time": 200.0, "time_unit": "ns"},
    ]}
    micro_clean = {"benchmarks": [
        {"name": "BM_EventQueue", "real_time": 110.0, "time_unit": "ns"},
        {"name": "BM_Ranking", "real_time": 190.0, "time_unit": "ns"},
        {"name": "BM_Brand_New", "real_time": 50.0, "time_unit": "ns"},
    ]}
    micro_bad = {"benchmarks": [
        {"name": "BM_EventQueue", "real_time": 130.0, "time_unit": "ns"},
        {"name": "BM_Ranking", "real_time": 200.0, "time_unit": "ns"},
    ]}
    # Threaded QPS rows gate exactly like any other benchmark: the merged
    # baseline keys on the full google-benchmark name (threads suffix
    # included), and slower real_time per rank = lower QPS.
    qps_base = {"benchmarks": [
        {"name": "BM_RankQpsSnapshot/real_time/threads:5",
         "real_time": 500.0, "time_unit": "ns"},
    ]}
    qps_bad = {"benchmarks": [
        {"name": "BM_RankQpsSnapshot/real_time/threads:5",
         "real_time": 700.0, "time_unit": "ns"},
    ]}
    suite_base = {"runs": [{"jobs": 1, "wall_seconds": 10.0},
                           {"jobs": 2, "wall_seconds": 6.0}],
                  "byte_identical": True}
    suite_clean = {"runs": [{"jobs": 1, "wall_seconds": 10.5},
                            {"jobs": 2, "wall_seconds": 6.2}],
                   "byte_identical": True}
    suite_slow = {"runs": [{"jobs": 1, "wall_seconds": 15.0},
                           {"jobs": 2, "wall_seconds": 9.0}],
                  "byte_identical": True}
    suite_diverged = {"runs": [{"jobs": 1, "wall_seconds": 10.0},
                               {"jobs": 2, "wall_seconds": 6.0}],
                      "byte_identical": False}
    metro_base = {"arms": [
        {"arm": "flat", "wall_seconds": 8.0, "fingerprint": "0xaa"},
        {"arm": "sharded", "wall_seconds": 2.0, "fingerprint": "0xaa"},
    ], "agreement": 1.0}
    metro_clean = {"arms": [
        {"arm": "flat", "wall_seconds": 8.4, "fingerprint": "0xaa"},
        {"arm": "sharded", "wall_seconds": 2.1, "fingerprint": "0xaa"},
    ], "agreement": 1.0}
    metro_slow = {"arms": [
        {"arm": "flat", "wall_seconds": 12.0, "fingerprint": "0xaa"},
        {"arm": "sharded", "wall_seconds": 3.5, "fingerprint": "0xaa"},
    ], "agreement": 1.0}
    metro_split = {"arms": [
        {"arm": "flat", "wall_seconds": 8.0, "fingerprint": "0xaa"},
        {"arm": "sharded", "wall_seconds": 2.0, "fingerprint": "0xbb"},
    ], "agreement": 0.97}
    metro_drift = {"arms": [
        {"arm": "flat", "wall_seconds": 8.0, "fingerprint": "0xcc"},
        {"arm": "sharded", "wall_seconds": 2.0, "fingerprint": "0xcc"},
    ], "agreement": 1.0}
    serve_base = {"ceiling_qps": 400000.0,
                  "ceiling": {"p99_ns": 9000.0},
                "fixed": {"offered_qps": 100000.0,
                          "achieved_qps": 100000.0, "errors": 0,
                          "p99_ns": 200000.0}}
    serve_clean = {"ceiling_qps": 350000.0,
                 "ceiling": {"p99_ns": 12000.0},
                 "fixed": {"offered_qps": 100000.0,
                           "achieved_qps": 99000.0, "errors": 0,
                           "p99_ns": 900000.0}}
    serve_starved = {"ceiling_qps": 380000.0,
                   "ceiling": {"p99_ns": 9500.0},
                   "fixed": {"offered_qps": 100000.0,
                             "achieved_qps": 60000.0, "errors": 0,
                             "p99_ns": 200000.0}}
    serve_collapsed = {"ceiling_qps": 150000.0,
                     "ceiling": {"p99_ns": 9000.0},
                     "fixed": {"offered_qps": 100000.0,
                               "achieved_qps": 100000.0, "errors": 0,
                               "p99_ns": 200000.0}}
    serve_blowup = {"ceiling_qps": 400000.0,
                  "ceiling": {"p99_ns": 50000.0},
                  "fixed": {"offered_qps": 100000.0,
                            "achieved_qps": 100000.0, "errors": 0,
                            "p99_ns": 200000.0}}
    serve_errors = {"ceiling_qps": 400000.0,
                  "ceiling": {"p99_ns": 9000.0},
                  "fixed": {"offered_qps": 100000.0,
                            "achieved_qps": 100000.0, "errors": 3,
                            "p99_ns": 200000.0}}

    cases = (
        ("micro clean run passes",
         compare_micro(micro_base, micro_clean, 0.25)[1] == 0),
        ("micro 30% regression fails",
         compare_micro(micro_base, micro_bad, 0.25)[1] == 1),
        ("micro new benchmark never fails",
         compare_micro(micro_base, micro_clean, 0.0)[1] == 1),  # 10% > 0%
        ("threaded QPS regression fails",
         compare_micro(qps_base, qps_bad, 0.25)[1] == 1),
        ("suite clean run passes",
         compare_suite(suite_base, suite_clean, 0.25)[1] == 0),
        ("suite 50% wall-clock regression fails",
         compare_suite(suite_base, suite_slow, 0.25)[1] == 1),
        ("suite byte-identity break fails",
         compare_suite(suite_base, suite_diverged, 0.25)[1] == 1),
        ("metro clean run passes",
         compare_metro(metro_base, metro_clean, 0.25)[1] == 0),
        ("metro 50% wall-clock regression fails",
         compare_metro(metro_base, metro_slow, 0.25)[1] == 1),
        ("metro arm fingerprint split + agreement drop fails",
         compare_metro(metro_base, metro_split, 0.25)[1] >= 2),
        ("metro seeded-fingerprint drift from baseline fails",
         compare_metro(metro_base, metro_drift, 0.25)[1] == 2),
        ("qps clean run passes (ceiling noise + open-loop jitter ok)",
         compare_qps(serve_base, serve_clean, 0.25)[1] == 0),
        ("qps starved fixed load fails",
         compare_qps(serve_base, serve_starved, 0.25)[1] == 1),
        ("qps ceiling collapse fails",
         compare_qps(serve_base, serve_collapsed, 0.25)[1] == 1),
        ("qps closed-loop p99 blow-up fails",
         compare_qps(serve_base, serve_blowup, 0.25)[1] == 1),
        ("qps serve/decode errors fail",
         compare_qps(serve_base, serve_errors, 0.25)[1] == 1),
    )
    failures = 0
    for name, ok in cases:
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
        failures += 0 if ok else 1
    if failures:
        print(f"run_benches self-test: FAIL ({failures} case(s))",
              file=sys.stderr)
        return 1
    print(f"run_benches self-test: OK ({len(cases)} case(s))")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="run_benches", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out-dir",
                        default=os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--check", action="store_true",
                        help="compare a fresh micro run to the committed "
                             "baseline instead of rewriting artifacts")
    parser.add_argument("--baseline", default=None,
                        help="baseline for --check (default: "
                             "<out-dir>/BENCH_micro.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional ns/op regression (0.25 = "
                             "25%%)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1),
                        help="parallel jobs for the suite run")
    parser.add_argument("--reps", type=int, default=2,
                        help="repetitions for the suite run")
    parser.add_argument("--skip-suite", action="store_true",
                        help="skip the scaled Fig.-5 suite run/check")
    parser.add_argument("--skip-metro", action="store_true",
                        help="skip the metro_sweep run/check")
    parser.add_argument("--metro-only", action="store_true",
                        help="run/check only the metro_sweep gate")
    parser.add_argument("--metro-pods", type=int, default=4,
                        help="metro pods when (re)generating the baseline")
    parser.add_argument("--metro-tasks", type=int, default=200000,
                        help="metro tasks when (re)generating the baseline")
    parser.add_argument("--metro-epochs", type=int, default=40,
                        help="metro epochs when (re)generating the baseline")
    parser.add_argument("--metro-seed", type=int, default=42,
                        help="metro seed when (re)generating the baseline")
    parser.add_argument("--skip-qps", action="store_true",
                        help="skip the qps_serve run/check")
    parser.add_argument("--qps-only", action="store_true",
                        help="run/check only the qps_serve gate")
    parser.add_argument("--qps-pods", type=int, default=4,
                        help="qps pods when (re)generating the baseline")
    parser.add_argument("--qps-threads", type=int, default=1,
                        help="qps producer threads when (re)generating the "
                             "baseline")
    parser.add_argument("--qps-seconds", type=float, default=1.0,
                        help="qps window seconds when (re)generating the "
                             "baseline")
    parser.add_argument("--qps-offered", type=float, default=100000.0,
                        help="qps offered load when (re)generating the "
                             "baseline")
    parser.add_argument("--qps-seed", type=int, default=42,
                        help="qps seed when (re)generating the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run the synthetic comparison-logic suite "
                             "(no build directory required)")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    baseline = args.baseline or os.path.join(args.out_dir,
                                             "BENCH_micro.json")
    metro_baseline = os.path.join(args.out_dir, "BENCH_metro.json")
    qps_baseline = os.path.join(args.out_dir, "BENCH_qps.json")
    do_micro = not args.metro_only and not args.qps_only
    do_metro = args.metro_only or (not args.skip_metro and
                                   not args.qps_only)
    do_qps = args.qps_only or (not args.skip_qps and not args.metro_only)
    if args.check:
        rc = 0
        if do_micro:
            if not os.path.exists(baseline):
                print(f"run_benches: no baseline at {baseline}; run "
                      "without --check once and commit the artifact",
                      file=sys.stderr)
                return 2
            rc = check_micro(args.build_dir, baseline, args.threshold)
            if not args.skip_suite:
                suite_baseline = os.path.join(args.out_dir,
                                              "BENCH_suite.json")
                if not os.path.exists(suite_baseline):
                    print(f"run_benches: no suite baseline at "
                          f"{suite_baseline}; run without --check once and "
                          "commit the artifact", file=sys.stderr)
                    return 2
                rc = max(rc, check_suite(args.build_dir, suite_baseline,
                                         args.threshold))
        if do_metro:
            if not os.path.exists(metro_baseline):
                print(f"run_benches: no metro baseline at {metro_baseline}; "
                      "run without --check once and commit the artifact",
                      file=sys.stderr)
                return 2
            rc = max(rc, check_metro(args.build_dir, metro_baseline,
                                     args.threshold, args.jobs))
        if do_qps:
            if not os.path.exists(qps_baseline):
                print(f"run_benches: no qps baseline at {qps_baseline}; "
                      "run without --check once and commit the artifact",
                      file=sys.stderr)
                return 2
            rc = max(rc, check_qps(args.build_dir, qps_baseline,
                                   args.threshold))
        return rc

    os.makedirs(args.out_dir, exist_ok=True)
    if do_micro:
        run_micro(args.build_dir, os.path.join(args.out_dir,
                                               "BENCH_micro.json"))
        if not args.skip_suite:
            suite = run_suite(args.build_dir, args.jobs, args.reps)
            suite_path = os.path.join(args.out_dir, "BENCH_suite.json")
            with open(suite_path, "w", encoding="utf-8") as f:
                json.dump(suite, f, indent=2)
                f.write("\n")
            print(f"run_benches: wrote {suite_path}")
            if not suite["byte_identical"]:
                print("run_benches: PARALLEL OUTPUT DIVERGED FROM SERIAL",
                      file=sys.stderr)
                return 1
    if do_metro:
        metro = run_metro(args.build_dir, args.metro_pods, args.metro_tasks,
                          args.metro_epochs, args.metro_seed, args.jobs)
        with open(metro_baseline, "w", encoding="utf-8") as f:
            json.dump(metro, f, indent=2)
            f.write("\n")
        print(f"run_benches: wrote {metro_baseline}")
        arms = {a["arm"]: a["fingerprint"] for a in metro["arms"]}
        if len(set(arms.values())) != 1 or metro.get("agreement") != 1.0:
            print("run_benches: TWO-LEVEL DECISIONS DIVERGED FROM FLAT",
                  file=sys.stderr)
            return 1
    if do_qps:
        qps = run_qps(args.build_dir, args.qps_pods, args.qps_threads,
                      args.qps_seconds, args.qps_offered, args.qps_seed)
        with open(qps_baseline, "w", encoding="utf-8") as f:
            json.dump(qps, f, indent=2)
            f.write("\n")
        print(f"run_benches: wrote {qps_baseline}")
        if qps.get("fixed", {}).get("errors", 0) > 0:
            print("run_benches: SERVING PATH RETURNED ERRORS",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
