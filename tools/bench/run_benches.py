#!/usr/bin/env python3
"""Bench harness: runs the micro benchmarks and a scaled figure suite,
emits machine-readable JSON, and gates regressions against the committed
baseline.

Outputs (written to --out-dir, committed at tools/bench/):

  BENCH_micro.json   google-benchmark JSON from bench/micro_core (per-op
                     ns for the event queue, window-max queries, ranking,
                     Dijkstra, switch pipeline, TCP).
  BENCH_suite.json   wall-clock seconds of the scaled Fig.-5 suite at
                     --jobs=1 and --jobs=N, plus a byte-identity check of
                     the two reports (the parallel engine's contract).

Modes:

  run (default)      run everything, rewrite the JSON artifacts.
  --check            run micro_core fresh and compare against the
                     committed BENCH_micro.json; exit 1 when any shared
                     benchmark regressed more than --threshold (default
                     25%) in ns/op. New benchmarks (absent from the
                     baseline) are reported but never fail the check.

Wall-clock numbers are hardware-dependent: regenerate the baseline on the
machine that will check against it (CI regenerates its own in the smoke
job's first step when the artifact is missing).

Exit status: 0 ok, 1 regression/identity failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional


def run_micro(build_dir: str, out_path: str) -> Dict:
    exe = os.path.join(build_dir, "bench", "micro_core")
    if not os.path.exists(exe):
        print(f"run_benches: missing {exe} (build the micro_core target)",
              file=sys.stderr)
        sys.exit(2)
    cmd = [exe, "--benchmark_format=json", f"--benchmark_out={out_path}"]
    print(f"run_benches: {' '.join(cmd)}")
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path, encoding="utf-8") as f:
        return json.load(f)


def run_suite(build_dir: str, jobs: int, reps: int) -> Dict:
    """Scaled Fig.-5 run at --jobs=1 and --jobs=N: wall clock + output."""
    exe = os.path.join(build_dir, "bench", "fig5_serverless_delay")
    if not os.path.exists(exe):
        print(f"run_benches: missing {exe} (build the bench targets)",
              file=sys.stderr)
        sys.exit(2)
    result: Dict = {"bench": "fig5_serverless_delay", "reps": reps,
                    "runs": []}
    outputs: List[bytes] = []
    for j in (1, jobs):
        cmd = [exe, f"--reps={reps}", f"--jobs={j}"]
        print(f"run_benches: {' '.join(cmd)}")
        start = time.monotonic()
        proc = subprocess.run(cmd, check=True, capture_output=True)
        elapsed = time.monotonic() - start
        outputs.append(proc.stdout)
        result["runs"].append({"jobs": j,
                               "wall_seconds": round(elapsed, 3)})
    result["byte_identical"] = outputs[0] == outputs[-1]
    if len(result["runs"]) == 2 and result["runs"][1]["wall_seconds"] > 0:
        result["speedup"] = round(result["runs"][0]["wall_seconds"] /
                                  result["runs"][1]["wall_seconds"], 2)
    return result


def check_micro(build_dir: str, baseline_path: str,
                threshold: float) -> int:
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    fresh = run_micro(build_dir, "/tmp/BENCH_micro_check.json")

    base = {b["name"]: b for b in baseline["benchmarks"]}
    regressions = 0
    for bench in fresh["benchmarks"]:
        name = bench["name"]
        if name not in base:
            print(f"  NEW       {name}: {bench['real_time']:.1f} "
                  f"{bench['time_unit']} (no baseline)")
            continue
        old = base[name]["real_time"]
        new = bench["real_time"]
        delta = (new - old) / old * 100.0
        verdict = "OK"
        if new > old * (1.0 + threshold):
            verdict = "REGRESSION"
            regressions += 1
        print(f"  {verdict:<9} {name}: {old:.1f} -> {new:.1f} "
              f"{bench['time_unit']} ({delta:+.1f}%)")
    if regressions:
        print(f"run_benches: {regressions} benchmark(s) regressed more "
              f"than {threshold * 100:.0f}%", file=sys.stderr)
        return 1
    print("run_benches: no regressions beyond threshold")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="run_benches", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out-dir",
                        default=os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--check", action="store_true",
                        help="compare a fresh micro run to the committed "
                             "baseline instead of rewriting artifacts")
    parser.add_argument("--baseline", default=None,
                        help="baseline for --check (default: "
                             "<out-dir>/BENCH_micro.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional ns/op regression (0.25 = "
                             "25%%)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1),
                        help="parallel jobs for the suite run")
    parser.add_argument("--reps", type=int, default=2,
                        help="repetitions for the suite run")
    parser.add_argument("--skip-suite", action="store_true",
                        help="only run/emit the micro benchmarks")
    args = parser.parse_args(argv)

    baseline = args.baseline or os.path.join(args.out_dir,
                                             "BENCH_micro.json")
    if args.check:
        if not os.path.exists(baseline):
            print(f"run_benches: no baseline at {baseline}; run without "
                  "--check once and commit the artifact", file=sys.stderr)
            return 2
        return check_micro(args.build_dir, baseline, args.threshold)

    os.makedirs(args.out_dir, exist_ok=True)
    run_micro(args.build_dir, os.path.join(args.out_dir,
                                           "BENCH_micro.json"))
    if not args.skip_suite:
        suite = run_suite(args.build_dir, args.jobs, args.reps)
        suite_path = os.path.join(args.out_dir, "BENCH_suite.json")
        with open(suite_path, "w", encoding="utf-8") as f:
            json.dump(suite, f, indent=2)
            f.write("\n")
        print(f"run_benches: wrote {suite_path}")
        if not suite["byte_identical"]:
            print("run_benches: PARALLEL OUTPUT DIVERGED FROM SERIAL",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
